//! Executable verification of the SPF conditions F1–F4 and outcome
//! classification for Theorem 9.

use ivl_core::delay::DelayPair;
use ivl_core::noise::{ExtendingAdversary, UniformNoise, WorstCaseAdversary, ZeroNoise};
use ivl_core::{Bit, Signal};

use crate::circuit::SpfCircuit;
use crate::error::Error;

/// Classified behaviour of the storage loop (the OR output) in one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopOutcome {
    /// The loop output returned to 0 and stayed there (pulse filtered).
    Filtered {
        /// Number of complete pulses seen at the OR output.
        pulses: usize,
    },
    /// The loop output latched to constant 1.
    Latched {
        /// Number of complete pulses before latching.
        pulses: usize,
        /// Time of the final rising transition.
        settled_at: f64,
    },
    /// The loop was still switching close to the horizon (metastable).
    Oscillating {
        /// Number of complete pulses observed.
        pulses: usize,
    },
}

impl LoopOutcome {
    /// Classifies an OR-output signal observed until `horizon`. A run
    /// counts as settled if its last transition precedes the horizon by
    /// at least `quiet_margin`.
    #[must_use]
    pub fn classify(or_signal: &Signal, horizon: f64, quiet_margin: f64) -> Self {
        let stats = ivl_core::PulseStats::of(or_signal);
        let pulses = stats.pulse_count();
        match or_signal.last_time() {
            None => LoopOutcome::Filtered { pulses },
            Some(t) if t + quiet_margin > horizon => LoopOutcome::Oscillating { pulses },
            Some(t) => {
                if or_signal.final_value() == Bit::One {
                    LoopOutcome::Latched {
                        pulses,
                        settled_at: t,
                    }
                } else {
                    LoopOutcome::Filtered { pulses }
                }
            }
        }
    }
}

/// Result of an F1–F4 verification battery.
#[derive(Debug, Clone)]
pub struct SpfReport {
    /// F1: exactly one input and one output port (by construction).
    pub f1_well_formed: bool,
    /// F2: every adversary mapped the zero input to the zero output.
    pub f2_no_generation: bool,
    /// F3: some pulse produced a non-zero output.
    pub f3_nontrivial: bool,
    /// F4: minimal output transition separation observed across the
    /// battery (`None` if no output ever had two transitions — the
    /// strongest possible pass).
    pub f4_min_output_interval: Option<f64>,
    /// Number of (pulse, adversary) runs executed.
    pub runs: usize,
    /// Runs whose output was neither zero nor a single rising transition
    /// (must be 0 for a correct SPF circuit).
    pub anomalies: usize,
}

impl SpfReport {
    /// `true` if all four conditions hold, with `epsilon` as the F4
    /// witness (vacuously satisfied when no output pulse exists).
    #[must_use]
    pub fn passes(&self, epsilon: f64) -> bool {
        self.f1_well_formed
            && self.f2_no_generation
            && self.f3_nontrivial
            && self.anomalies == 0
            && self.f4_min_output_interval.is_none_or(|m| m >= epsilon)
    }
}

/// Runs the F1–F4 battery for an [`SpfCircuit`]: the zero signal plus
/// every width in `pulse_widths`, each under the zero, worst-case,
/// extending and several uniform-random adversaries.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn verify_spf<D>(
    circuit: &SpfCircuit<D>,
    pulse_widths: &[f64],
    horizon: f64,
) -> Result<SpfReport, Error>
where
    D: DelayPair + Clone + Send + 'static,
{
    let mut report = SpfReport {
        f1_well_formed: true, // the Fig. 5 builder has exactly one i and one o
        f2_no_generation: true,
        f3_nontrivial: false,
        f4_min_output_interval: None,
        runs: 0,
        anomalies: 0,
    };

    let consider = |output: &Signal, report: &mut SpfReport| {
        if !output.is_zero() {
            report.f3_nontrivial = true;
        }
        if let Some(min) = output.min_interval() {
            report.f4_min_output_interval = Some(
                report
                    .f4_min_output_interval
                    .map_or(min, |m: f64| m.min(min)),
            );
        }
        let clean = output.is_zero() || (output.len() == 1 && output.final_value() == Bit::One);
        if !clean {
            report.anomalies += 1;
        }
    };

    // F2: zero input under several adversaries
    for seed in 0..3u64 {
        let run = circuit.simulate(UniformNoise::new(seed), &Signal::zero(), horizon)?;
        report.runs += 1;
        if !run.output.is_zero() {
            report.f2_no_generation = false;
        }
    }
    {
        let run = circuit.simulate(ZeroNoise, &Signal::zero(), horizon)?;
        report.runs += 1;
        if !run.output.is_zero() {
            report.f2_no_generation = false;
        }
    }

    // pulse battery × adversary battery
    for &w in pulse_widths {
        let input = Signal::pulse(0.0, w).map_err(Error::Core)?;
        let run = circuit.simulate(ZeroNoise, &input, horizon)?;
        report.runs += 1;
        consider(&run.output, &mut report);
        let run = circuit.simulate(WorstCaseAdversary, &input, horizon)?;
        report.runs += 1;
        consider(&run.output, &mut report);
        let run = circuit.simulate(ExtendingAdversary, &input, horizon)?;
        report.runs += 1;
        consider(&run.output, &mut report);
        for seed in 0..4u64 {
            let run =
                circuit.simulate(UniformNoise::new(seed.wrapping_mul(97)), &input, horizon)?;
            report.runs += 1;
            consider(&run.output, &mut report);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_core::delay::ExpChannel;
    use ivl_core::noise::EtaBounds;

    fn spf() -> SpfCircuit<ExpChannel> {
        SpfCircuit::dimensioned(
            ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
            EtaBounds::new(0.02, 0.02).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn classify_outcomes() {
        let latched = Signal::from_times(Bit::Zero, &[1.0]).unwrap();
        assert!(matches!(
            LoopOutcome::classify(&latched, 100.0, 5.0),
            LoopOutcome::Latched { pulses: 0, .. }
        ));
        let filtered = Signal::pulse(0.0, 1.0).unwrap();
        assert!(matches!(
            LoopOutcome::classify(&filtered, 100.0, 5.0),
            LoopOutcome::Filtered { pulses: 1 }
        ));
        assert!(matches!(
            LoopOutcome::classify(&Signal::zero(), 100.0, 5.0),
            LoopOutcome::Filtered { pulses: 0 }
        ));
        // activity near the horizon counts as oscillating
        let busy = Signal::pulse(97.0, 1.0).unwrap();
        assert!(matches!(
            LoopOutcome::classify(&busy, 100.0, 5.0),
            LoopOutcome::Oscillating { pulses: 1 }
        ));
    }

    #[test]
    fn full_battery_passes_theorem_12() {
        let c = spf();
        let th = c.theory().unwrap();
        let widths = [
            th.filter_bound * 0.5,
            th.filter_bound,
            th.delta0_tilde * 0.98,
            th.delta0_tilde,
            th.delta0_tilde * 1.02,
            th.lock_bound,
            th.lock_bound * 2.0,
        ];
        let report = verify_spf(&c, &widths, 400.0).unwrap();
        assert!(report.f1_well_formed);
        assert!(report.f2_no_generation, "{report:?}");
        assert!(report.f3_nontrivial, "{report:?}");
        assert_eq!(report.anomalies, 0, "{report:?}");
        // outputs are only {zero, single rise} → F4 vacuous or large
        assert!(report.passes(1e-3), "{report:?}");
        assert!(report.runs > 20);
    }
}
