//! `faithful-lint`: static diagnostics over experiment specs.
//!
//! The involution model's faithfulness guarantees only hold for
//! well-formed inputs — channels must satisfy constraint (C), netlists
//! must not contain undelayed combinational cycles, and specs must name
//! real channel kinds with physical parameters. This module checks all
//! of that *statically*: every pass is pure and runs without scheduling
//! a single simulation event.
//!
//! Four passes produce [`Diagnostic`]s with stable codes:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `IVL001` | error | combinational cycle with zero minimum delay on every edge |
//! | `IVL002` | info | delayed feedback loop (legal, but worth knowing about) |
//! | `IVL003` | warning | dangling node (undriven gate, or a node that drives nothing) |
//! | `IVL004` | error | output port no gate drives |
//! | `IVL005` | warning | node unreachable from any input |
//! | `IVL010` | error | channel parameters rejected by the factory |
//! | `IVL011` | error | constraint (C) violated for an `eta` channel or SPF spec |
//! | `IVL012` | error | delay pair has no positive `δ_min` fixed point |
//! | `IVL013` | warning | involution / monotonicity / concavity probing violation |
//! | `IVL014` | warning | `delay_hint()` inconsistent with sampled delays |
//! | `IVL015` | warning | delay-hint spread degenerates the calendar queue |
//! | `IVL020` | warning | a scenario's stimulus provably cancels inside a channel |
//! | `IVL021` | info | SPF input pulse provably filtered (Lemma 4 bound) |
//! | `IVL022` | info | pulse-width propagation truncated (probe budget) |
//! | `IVL030` | error | unknown channel kind |
//! | `IVL031` | error | duplicate node name |
//! | `IVL032` | error | edge references an unknown node |
//! | `IVL033` | error | scenario drives an unknown input port |
//! | `IVL034` | error | empty sweep axis / sample set |
//! | `IVL035` | error | non-finite or out-of-range numeric field |
//! | `IVL036` | error | signal spec that cannot build a valid signal |
//! | `IVL037` | warning | `workers = 0` (clamped to 1 at run time) |
//! | `IVL038` | warning | duplicate scenario label |
//! | `IVL039` | error | malformed truth table (rows ≠ 2^inputs) |
//! | `IVL040` | warning | `max_events` below the provable minimum event count |
//! | `IVL041` | warning | `retry(n)` policy on a fully deterministic workload |
//! | `IVL050` | info | `workers = n` is overridden by the experiment service's shared pool (service context only) |
//! | `IVL060` | error | degenerate generator parameters (zero-size grid or DAG, fat tree beyond the depth cap) |
//! | `IVL061` | warning | `random_dag` without an explicit seed (netlist not reproducible from the spec) |
//! | `IVL062` | error | watched node name not present in the (generated) topology |
//!
//! [`Experiment::run`](crate::Experiment::run) runs the linter as a
//! pre-flight: `Error`-severity diagnostics deny the run by default;
//! [`LintConfig`] (or the `IVL_LINT=off|warn|deny` environment knob)
//! overrides that.

use std::collections::{HashMap, HashSet};
use std::fmt;

use ivl_core::channel::{apply_online, OnlineChannel};
use ivl_core::delay::{check_involution, delta_min_of, DelayPair};
use ivl_core::factory::{delay_pair_from, ChannelParams, ChannelRegistry, DelayFamily, ParamValue};
use ivl_core::noise::EtaBounds;
use ivl_core::Signal;

use crate::error::{Span, SpecError};
use crate::spec::{
    channel_to_value, AnalogSpec, ChannelSpec, DelaySpec, DigitalSpec, ExperimentSpec,
    FailurePolicySpec, GateKindSpec, NodeSpec, ReferenceSpec, ScenarioSpec, SignalSpec, SpfSpec,
    SpfTask, TopologySpec, WorkloadSpec,
};
use crate::value::{parse_document, Value, ValueKind};

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: nothing wrong, but worth knowing.
    Info,
    /// Suspicious: the experiment runs, but probably not as intended.
    Warning,
    /// Broken: the experiment cannot produce a meaningful result.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the linter.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`IVL001`…); see the module table.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Where in the spec text it points (for parsed specs).
    pub span: Option<Span>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = self.span {
            write!(f, " ({span})")?;
        }
        Ok(())
    }
}

/// Everything the linter found on one spec, in pass order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// The findings, in the order the passes produced them.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` if nothing at all was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` if any finding has [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

/// What [`Experiment::run`](crate::Experiment::run) does with lint
/// findings before dispatching the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintConfig {
    /// Skip the pre-flight entirely.
    Off,
    /// Run the linter and print a non-clean report to stderr, but never
    /// refuse to run.
    Warn,
    /// Refuse to run a spec with `Error`-severity findings (the
    /// default).
    #[default]
    Deny,
}

impl LintConfig {
    /// Reads the `IVL_LINT` environment knob (`off`, `warn` or `deny`);
    /// `None` for unset or unrecognized values.
    #[must_use]
    pub fn from_env() -> Option<LintConfig> {
        match std::env::var("IVL_LINT").ok()?.as_str() {
            "off" => Some(LintConfig::Off),
            "warn" => Some(LintConfig::Warn),
            "deny" => Some(LintConfig::Deny),
            _ => None,
        }
    }
}

/// Lints a (typically programmatically built) spec.
///
/// Diagnostics carry no spans; parse via [`lint_text`] to get locations.
#[must_use]
pub fn lint(spec: &ExperimentSpec, registry: &ChannelRegistry) -> LintReport {
    Linter::new(registry, SpecSpans::default()).run(spec)
}

/// Parses a spec document and lints it, attaching line/column spans to
/// the diagnostics.
///
/// # Errors
///
/// [`SpecError`] when the text does not parse as a spec at all (lint
/// needs a structurally valid document to work on).
pub fn lint_text(text: &str, registry: &ChannelRegistry) -> Result<LintReport, SpecError> {
    let value = parse_document(text)?;
    let spans = SpecSpans::extract(&value);
    let spec = ExperimentSpec::from_value(value)?;
    Ok(Linter::new(registry, spans).run(&spec))
}

/// Lints a spec *as the experiment service would before running it*.
///
/// This is the same pass set as [`lint`], plus service-context
/// diagnostics for fields the daemon overrides server-side — today
/// `IVL050` (info) when a spec requests `workers = n`, which
/// `faithful-serve` ignores in favor of its own shared pool sizing.
/// Results are unaffected (sweeps are bit-identical across worker
/// counts), so the finding is informational, but clients should not be
/// silently surprised that the knob did nothing.
#[must_use]
pub fn lint_for_service(spec: &ExperimentSpec, registry: &ChannelRegistry) -> LintReport {
    Linter::new(registry, SpecSpans::default())
        .for_service()
        .run(spec)
}

/// Parses a spec document and lints it in service context (see
/// [`lint_for_service`]), attaching line/column spans.
///
/// # Errors
///
/// [`SpecError`] when the text does not parse as a spec at all.
pub fn lint_text_for_service(
    text: &str,
    registry: &ChannelRegistry,
) -> Result<LintReport, SpecError> {
    let value = parse_document(text)?;
    let spans = SpecSpans::extract(&value);
    let spec = ExperimentSpec::from_value(value)?;
    Ok(Linter::new(registry, spans).for_service().run(&spec))
}

// ======================================================================
// Span side-table
// ======================================================================

/// Spans harvested from the parsed [`Value`] tree, so diagnostics on the
/// typed spec (which carries no spans) can still point into the text.
#[derive(Debug, Default)]
struct SpecSpans {
    workload: Option<Span>,
    nodes: Vec<Option<Span>>,
    edges: Vec<Option<Span>>,
    scenarios: Vec<Option<Span>>,
    widths: Option<Span>,
    horizon: Option<Span>,
    workers: Option<Span>,
    max_events: Option<Span>,
    on_failure: Option<Span>,
    delay: Option<Span>,
    topology: Option<Span>,
    watch: Vec<Option<Span>>,
    /// Rendered channel spec text → span of its node in the document.
    channels: HashMap<String, Span>,
}

impl SpecSpans {
    fn extract(value: &Value) -> SpecSpans {
        let mut spans = SpecSpans {
            workload: value.span(),
            ..SpecSpans::default()
        };
        spans.collect_channels(value);
        let ValueKind::Node(_, fields) = value.kind() else {
            return spans;
        };
        for (name, v) in fields {
            match name.as_str() {
                "topology" => {
                    spans.topology = v.span();
                    spans.collect_topology(v);
                }
                "scenarios" => spans.scenarios = list_spans(v),
                "outputs" => {
                    if let ValueKind::Node(_, of) = v.kind() {
                        if let Some((_, w)) = of.iter().find(|(n, _)| n == "watch") {
                            spans.watch = list_spans(w);
                        }
                    }
                }
                "horizon" => spans.horizon = v.span(),
                "workers" => spans.workers = v.span(),
                "max_events" => spans.max_events = v.span(),
                "on_failure" => spans.on_failure = v.span(),
                "sweep" => {
                    if let ValueKind::Node(_, sf) = v.kind() {
                        if let Some((_, w)) = sf.iter().find(|(n, _)| n == "widths") {
                            spans.widths = w.span();
                        }
                    }
                }
                "delay" => spans.delay = v.span(),
                _ => {}
            }
        }
        spans
    }

    fn collect_topology(&mut self, v: &Value) {
        let ValueKind::Node(_, fields) = v.kind() else {
            return;
        };
        for (name, fv) in fields {
            match name.as_str() {
                "nodes" => self.nodes = list_spans(fv),
                "edges" => self.edges = list_spans(fv),
                _ => {}
            }
        }
    }

    /// Every node reached through a field named `channel` is a channel
    /// spec; key by its canonical rendering (which is what the typed
    /// spec re-renders to, so lookups match exactly).
    fn collect_channels(&mut self, v: &Value) {
        match v.kind() {
            ValueKind::Node(_, fields) => {
                for (name, fv) in fields {
                    if name == "channel"
                        && matches!(fv.kind(), ValueKind::Node(..) | ValueKind::Word(_))
                    {
                        if let Some(span) = fv.span() {
                            self.channels.entry(fv.to_string()).or_insert(span);
                        }
                    }
                    self.collect_channels(fv);
                }
            }
            ValueKind::List(items) => {
                for item in items {
                    self.collect_channels(item);
                }
            }
            _ => {}
        }
    }
}

fn list_spans(v: &Value) -> Vec<Option<Span>> {
    match v.kind() {
        ValueKind::List(items) => items.iter().map(Value::span).collect(),
        _ => Vec::new(),
    }
}

// ======================================================================
// The linter
// ======================================================================

/// Pulse-response probes per lint run; beyond this the hazard pass
/// truncates (and says so with `IVL022`) rather than stall a pre-flight.
const PROBE_BUDGET: usize = 4096;

/// Numerical tolerance for the involution probing pass (`IVL013`).
const INVOLUTION_TOL: f64 = 1e-6;

/// Output widths at or below this count as a cancelled pulse.
const DEAD_WIDTH: f64 = 1e-12;

/// Cached per-channel facts from the channel-verification pass.
#[derive(Clone, Default)]
struct ChannelFacts {
    builds: bool,
    hint: Option<f64>,
    /// `true` when a probed single transition was delivered with zero
    /// delay (the edge can sustain a zero-delay cycle).
    zero_delay: bool,
}

struct Linter<'a> {
    registry: &'a ChannelRegistry,
    spans: SpecSpans,
    diagnostics: Vec<Diagnostic>,
    channels: HashMap<String, ChannelFacts>,
    /// `(channel key, width bits)` → surviving output width.
    probe_cache: HashMap<(String, u64), Option<f64>>,
    probes_left: usize,
    truncated: bool,
    /// Lint for the experiment service: adds diagnostics about fields
    /// the daemon overrides server-side (`IVL050`).
    service: bool,
}

impl<'a> Linter<'a> {
    fn new(registry: &'a ChannelRegistry, spans: SpecSpans) -> Self {
        Linter {
            registry,
            spans,
            diagnostics: Vec::new(),
            channels: HashMap::new(),
            probe_cache: HashMap::new(),
            probes_left: PROBE_BUDGET,
            truncated: false,
            service: false,
        }
    }

    fn for_service(mut self) -> Self {
        self.service = true;
        self
    }

    fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        span: Option<Span>,
        message: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            message,
            span,
        });
    }

    fn run(mut self, spec: &ExperimentSpec) -> LintReport {
        match &spec.workload {
            WorkloadSpec::Channel(c) => {
                self.check_channel(&c.channel);
                self.check_signal(&c.input, "input", self.spans.workload);
            }
            WorkloadSpec::Digital(d) => self.lint_digital(d),
            WorkloadSpec::Analog(a) => self.lint_analog(a),
            WorkloadSpec::Spf(s) => self.lint_spf(s),
        }
        if self.truncated {
            let done = PROBE_BUDGET - self.probes_left;
            self.push(
                "IVL022",
                Severity::Info,
                None,
                format!("pulse-width propagation truncated after {done} channel probes"),
            );
        }
        LintReport {
            diagnostics: self.diagnostics,
        }
    }

    // ------------------------------------------------------------------
    // Pass 4 helpers shared by all workloads
    // ------------------------------------------------------------------

    fn check_signal(&mut self, s: &SignalSpec, what: &str, span: Option<Span>) {
        if let Err(e) = s.build() {
            self.push(
                "IVL036",
                Severity::Error,
                span,
                format!("{what}: signal spec builds no valid signal: {e}"),
            );
        }
    }

    fn check_finite(&mut self, value: f64, what: &str, span: Option<Span>) {
        if !value.is_finite() {
            self.push(
                "IVL035",
                Severity::Error,
                span,
                format!("{what} must be finite, got {value}"),
            );
        }
    }

    fn check_workers(&mut self, workers: Option<u32>) {
        if workers == Some(0) {
            self.push(
                "IVL037",
                Severity::Warning,
                self.spans.workers,
                "workers = 0 is clamped to 1 at run time".to_owned(),
            );
        }
        if let (true, Some(n)) = (self.service, workers) {
            self.push(
                "IVL050",
                Severity::Info,
                self.spans.workers,
                format!(
                    "workers = {n} is ignored by the experiment service, which schedules \
                     jobs onto its own shared pool (results are unaffected: sweeps are \
                     bit-identical across worker counts)"
                ),
            );
        }
    }

    // ------------------------------------------------------------------
    // Pass 2: channel-parameter verification
    // ------------------------------------------------------------------

    fn channel_key(c: &ChannelSpec) -> String {
        channel_to_value(c).to_string()
    }

    fn channel_span(&self, key: &str) -> Option<Span> {
        self.spans.channels.get(key).copied()
    }

    /// Verifies one channel spec (memoized by its canonical rendering)
    /// and returns the cached facts about it.
    fn check_channel(&mut self, c: &ChannelSpec) -> ChannelFacts {
        let key = Self::channel_key(c);
        if let Some(facts) = self.channels.get(&key) {
            return facts.clone();
        }
        let facts = self.verify_channel(c, &key);
        self.channels.insert(key, facts.clone());
        facts
    }

    fn verify_channel(&mut self, c: &ChannelSpec, key: &str) -> ChannelFacts {
        let span = self.channel_span(key);
        let mut facts = ChannelFacts::default();
        if !self.registry.contains(&c.kind) {
            self.push(
                "IVL030",
                Severity::Error,
                span,
                format!(
                    "unknown channel kind {:?} (registered: {})",
                    c.kind,
                    self.registry.kinds().join(", ")
                ),
            );
            return facts;
        }
        let channel = match self.registry.build(&c.kind, &c.params) {
            Ok(ch) => ch,
            Err(e) => {
                self.push(
                    "IVL010",
                    Severity::Error,
                    span,
                    format!("channel {:?}: parameters rejected: {e}", c.kind),
                );
                return facts;
            }
        };
        facts.builds = true;
        facts.hint = channel.delay_hint();

        // probe the delivery delay of an isolated wide pulse: a zero (or
        // negative) first delay marks a zero-delay edge for pass 1, and
        // the sampled delays must be commensurate with `delay_hint()`
        // for the calendar queue sizing to make sense (IVL014).
        let mut channel = channel;
        let probe = Signal::pulse(0.0, 1e6).expect("static probe signal");
        let out = apply_online(&mut channel, &probe);
        let mut sampled: Vec<f64> = Vec::new();
        if let Some(first) = out.transitions().first() {
            sampled.push(first.time);
            facts.zero_delay = first.time <= DEAD_WIDTH;
        }
        if let Some(second) = out.transitions().get(1) {
            sampled.push(second.time - 1e6);
        }
        if let Some(hint) = facts.hint {
            let d_max = sampled.iter().copied().fold(0.0_f64, f64::max);
            if d_max > 0.0 && hint > 0.0 && (d_max > 4.0 * hint || hint > 4.0 * d_max) {
                self.push(
                    "IVL014",
                    Severity::Warning,
                    span,
                    format!(
                        "channel {:?}: delay_hint() = {hint} but sampled delays reach {d_max} \
                         (ratio > 4x degrades calendar-queue bucket sizing)",
                        c.kind
                    ),
                );
            }
        }

        // deep involution checks when the parameters describe one of the
        // built-in delay families (custom factories shadowing these
        // kinds get probing, not theory).
        if (c.kind == "involution" || c.kind == "eta") && delay_pair_from(&c.params).is_ok() {
            let eta = (c.kind == "eta").then(|| {
                (
                    c.params.num_or("minus", 0.0).unwrap_or(0.0),
                    c.params.num_or("plus", 0.0).unwrap_or(0.0),
                )
            });
            match delay_pair_from(&c.params).expect("checked above") {
                DelayFamily::Exp(d) => self.verify_pair(&d, eta, &c.kind, span),
                DelayFamily::Rational(d) => self.verify_pair(&d, eta, &c.kind, span),
                _ => {}
            }
        }
        facts
    }

    /// Involution-theory checks on one delay pair: `δ_min` existence
    /// (IVL012), grid probing (IVL013) and constraint (C) when η-bounds
    /// are present (IVL011).
    fn verify_pair<D: DelayPair>(
        &mut self,
        pair: &D,
        eta: Option<(f64, f64)>,
        kind: &str,
        span: Option<Span>,
    ) {
        let delta_min = match delta_min_of(pair) {
            Ok(d) => d,
            Err(e) => {
                self.push(
                    "IVL012",
                    Severity::Error,
                    span,
                    format!("channel {kind:?}: no positive delta_min fixed point: {e}"),
                );
                return;
            }
        };
        let hi = 5.0 * (pair.delta_up_inf() + pair.delta_down_inf()) + 1.0;
        let report = check_involution(pair, -0.9 * delta_min, hi, 96);
        if !report.is_valid(INVOLUTION_TOL) {
            self.push(
                "IVL013",
                Severity::Warning,
                span,
                format!(
                    "channel {kind:?}: delay pair fails involution probing \
                     (roundtrip {:.2e}, monotonicity {:.2e}, concavity {:.2e})",
                    report.max_roundtrip_error,
                    report.max_monotonicity_violation,
                    report.max_concavity_violation
                ),
            );
        }
        if let Some((minus, plus)) = eta {
            if let Ok(bounds) = EtaBounds::new(minus, plus) {
                if !bounds.satisfies_constraint_c(pair) {
                    let slack = pair.delta_down(-plus) - delta_min - (plus + minus);
                    self.push(
                        "IVL011",
                        Severity::Error,
                        span,
                        format!(
                            "channel {kind:?}: constraint (C) violated: \
                             eta+ + eta- = {} but delta_down(-eta+) - delta_min = {} \
                             (slack {slack:.6})",
                            plus + minus,
                            pair.delta_down(-plus) - delta_min
                        ),
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Digital workload: passes 1, 3 and 4
    // ------------------------------------------------------------------

    fn lint_digital(&mut self, d: &DigitalSpec) {
        self.check_finite(d.horizon, "digital: field \"horizon\"", self.spans.horizon);
        if d.horizon.is_finite() && d.horizon < 0.0 {
            self.push(
                "IVL035",
                Severity::Error,
                self.spans.horizon,
                format!("digital: field \"horizon\" must be >= 0, got {}", d.horizon),
            );
        }
        self.check_workers(d.workers);

        let graph = self.extract_graph(&d.topology);
        for edge in &graph.edges {
            if let Some(c) = edge.channel {
                self.check_channel(c);
            }
        }
        self.graph_pass(&graph);
        self.hint_spread(&graph);

        let mut labels: HashSet<&str> = HashSet::new();
        let input_names: HashSet<&str> = graph
            .nodes
            .iter()
            .filter(|n| n.kind == GKind::Input)
            .map(|n| n.name.as_str())
            .collect();
        for (i, s) in d.scenarios.iter().enumerate() {
            let span = self.spans.scenarios.get(i).copied().flatten();
            if !labels.insert(&s.label) {
                self.push(
                    "IVL038",
                    Severity::Warning,
                    span,
                    format!("duplicate scenario label {:?}", s.label),
                );
            }
            for (port, sig) in &s.inputs {
                if !input_names.contains(port.as_str()) {
                    self.push(
                        "IVL033",
                        Severity::Error,
                        span,
                        format!(
                            "scenario {:?} drives unknown input port {:?}",
                            s.label, port
                        ),
                    );
                }
                self.check_signal(sig, &format!("scenario {:?}, port {port:?}", s.label), span);
            }
        }

        // IVL062: a watched node must exist in the topology. Generator
        // node names follow a closed-form naming scheme, so membership
        // is decided without materializing the netlist.
        for (i, name) in d.outputs.watch.iter().enumerate() {
            if !topology_has_node(&d.topology, name) {
                let span = self
                    .spans
                    .watch
                    .get(i)
                    .copied()
                    .flatten()
                    .or(self.spans.topology);
                self.push(
                    "IVL062",
                    Severity::Error,
                    span,
                    format!("watched node {name:?} does not exist in the topology"),
                );
            }
        }

        self.hazard_pass(&graph, &d.scenarios);
        self.budget_pass(&graph, d);
        self.retry_pass(&graph, d);
    }

    /// `IVL040`: per scenario, every input transition fed into a direct
    /// (channel-less) outgoing edge is scheduled verbatim, so the
    /// scheduled-event count is provably at least
    /// Σ_ports (transitions × direct out-edges). If that floor already
    /// exceeds `max_events`, the scenario is guaranteed to die with
    /// `MaxEventsExceeded` before a single gate fires.
    fn budget_pass(&mut self, g: &Graph<'_>, d: &DigitalSpec) {
        let Some(budget) = d.max_events else {
            return;
        };
        let mut direct_out: HashMap<&str, u64> = HashMap::new();
        for e in &g.edges {
            if e.channel.is_none() && g.nodes[e.from].kind == GKind::Input {
                *direct_out.entry(g.nodes[e.from].name.as_str()).or_insert(0) += 1;
            }
        }
        if direct_out.is_empty() {
            return;
        }
        for (i, s) in d.scenarios.iter().enumerate() {
            let mut floor: u64 = 0;
            for (port, sig) in &s.inputs {
                let Some(&fanout) = direct_out.get(port.as_str()) else {
                    continue;
                };
                let Ok(signal) = sig.build() else {
                    continue; // IVL036 already reported
                };
                floor += signal.transitions().len() as u64 * fanout;
            }
            if floor > budget {
                let span = self
                    .spans
                    .max_events
                    .or_else(|| self.spans.scenarios.get(i).copied().flatten());
                self.push(
                    "IVL040",
                    Severity::Warning,
                    span,
                    format!(
                        "scenario {:?} schedules at least {floor} events from its input \
                         stimuli alone, which already exceeds max_events = {budget}",
                        s.label
                    ),
                );
            }
        }
    }

    /// `IVL041`: a `retry(n)` failure policy re-runs a failed scenario
    /// with the same seed, so when every channel in the topology is
    /// deterministic the retries can only reproduce the failure.
    /// Channels of unknown (custom) kinds are conservatively assumed
    /// stochastic, so they never trigger this warning.
    fn retry_pass(&mut self, g: &Graph<'_>, d: &DigitalSpec) {
        let FailurePolicySpec::Retry { attempts } = d.on_failure else {
            return;
        };
        let deterministic = g.edges.iter().all(|e| {
            let Some(c) = e.channel else {
                return true; // direct connection
            };
            if !matches!(
                c.kind.as_str(),
                "pure" | "inertial" | "ddm" | "involution" | "eta"
            ) {
                return false; // custom kind: assume stochastic
            }
            !matches!(
                c.params.text_or("noise", "zero"),
                Ok("uniform" | "gaussian")
            )
        });
        if deterministic {
            self.push(
                "IVL041",
                Severity::Warning,
                self.spans.on_failure,
                format!(
                    "on_failure = retry({attempts}) with a fully deterministic workload: \
                     retries re-run the same seed and can only reproduce the failure"
                ),
            );
        }
    }

    // ---- pass 1: graph analysis ----

    fn extract_graph<'s>(&mut self, topology: &'s TopologySpec) -> Graph<'s> {
        let mut g = Graph::default();
        match topology {
            TopologySpec::Netlist(n) => {
                let mut by_name: HashMap<&str, usize> = HashMap::new();
                for (i, node) in n.nodes.iter().enumerate() {
                    let span = self.spans.nodes.get(i).copied().flatten();
                    let (name, kind) = match node {
                        NodeSpec::Input { name } => (name, GKind::Input),
                        NodeSpec::Output { name } => (name, GKind::Output),
                        NodeSpec::Gate { name, kind, .. } => {
                            self.check_gate_kind(kind, span);
                            (name, GKind::Gate)
                        }
                    };
                    if by_name.contains_key(name.as_str()) {
                        self.push(
                            "IVL031",
                            Severity::Error,
                            span,
                            format!("duplicate node name {name:?}"),
                        );
                        continue;
                    }
                    by_name.insert(name.as_str(), g.nodes.len());
                    g.nodes.push(GNode {
                        name: name.clone(),
                        kind,
                        span,
                    });
                }
                for (i, e) in n.edges.iter().enumerate() {
                    let span = self.spans.edges.get(i).copied().flatten();
                    let from = by_name.get(e.from.as_str()).copied();
                    let to = by_name.get(e.to.as_str()).copied();
                    for (end, node) in [("from", &e.from), ("to", &e.to)] {
                        if !by_name.contains_key(node.as_str()) {
                            self.push(
                                "IVL032",
                                Severity::Error,
                                span,
                                format!("edge {end} references unknown node {node:?}"),
                            );
                        }
                    }
                    if let (Some(from), Some(to)) = (from, to) {
                        g.edges.push(GEdge {
                            from,
                            to,
                            channel: e.channel.as_ref(),
                            span,
                        });
                    }
                }
            }
            TopologySpec::InverterChain { stages, channel } => {
                g.nodes.push(GNode {
                    name: "a".to_owned(),
                    kind: GKind::Input,
                    span: None,
                });
                for i in 0..*stages {
                    g.nodes.push(GNode {
                        name: format!("inv{i}"),
                        kind: GKind::Gate,
                        span: None,
                    });
                }
                g.nodes.push(GNode {
                    name: "y".to_owned(),
                    kind: GKind::Output,
                    span: None,
                });
                let span = self.channel_span(&Self::channel_key(channel));
                for i in 0..=*stages as usize {
                    g.edges.push(GEdge {
                        from: i,
                        to: i + 1,
                        // the first hop is a direct connection, matching
                        // how the facade builds the chain
                        channel: (i > 0).then_some(channel),
                        span,
                    });
                }
            }
            // scale generators (grid, random_dag, fat_tree) are acyclic
            // and fully connected by construction, so instead of
            // synthesizing up to a million nodes the lint graph is a
            // 3-node skeleton `a → gate → y` that exercises every
            // channel/stimulus pass exactly once (the input hop is
            // direct, matching how the generators wire their first
            // gate). Generator *parameters* are checked here (IVL060,
            // IVL061); watch-name membership is checked formulaically
            // in `lint_digital` (IVL062).
            TopologySpec::Grid2d {
                width,
                height,
                channel,
            } => {
                if *width == 0 || *height == 0 {
                    self.push(
                        "IVL060",
                        Severity::Error,
                        self.spans.topology,
                        format!(
                            "grid generator has zero size ({width} × {height}): \
                             no gate drives the output port"
                        ),
                    );
                }
                self.generator_skeleton(&mut g, channel);
            }
            TopologySpec::RandomDag {
                nodes,
                seed,
                channel,
            } => {
                if *nodes == 0 {
                    self.push(
                        "IVL060",
                        Severity::Error,
                        self.spans.topology,
                        "random_dag generator has zero gates: no gate drives the output port"
                            .to_owned(),
                    );
                }
                if seed.is_none() {
                    self.push(
                        "IVL061",
                        Severity::Warning,
                        self.spans.topology,
                        "random_dag without a seed defaults to 0 — state the seed so the \
                         netlist is reproducible from the spec alone"
                            .to_owned(),
                    );
                }
                self.generator_skeleton(&mut g, channel);
            }
            TopologySpec::FatTree { depth, channel } => {
                if *depth > 24 {
                    self.push(
                        "IVL060",
                        Severity::Error,
                        self.spans.topology,
                        format!(
                            "fat_tree depth {depth} exceeds the cap of 24 \
                             (2^24 leaves ≈ 33M gates)"
                        ),
                    );
                }
                self.generator_skeleton(&mut g, channel);
            }
        }
        g.index();
        g
    }

    /// The 3-node stand-in graph for a scale generator: input `"a"`
    /// directly into one gate, one generator channel to output `"y"`.
    fn generator_skeleton<'s>(&mut self, g: &mut Graph<'s>, channel: &'s ChannelSpec) {
        g.nodes.push(GNode {
            name: "a".to_owned(),
            kind: GKind::Input,
            span: None,
        });
        g.nodes.push(GNode {
            name: "g".to_owned(),
            kind: GKind::Gate,
            span: None,
        });
        g.nodes.push(GNode {
            name: "y".to_owned(),
            kind: GKind::Output,
            span: None,
        });
        let span = self.channel_span(&Self::channel_key(channel));
        g.edges.push(GEdge {
            from: 0,
            to: 1,
            channel: None,
            span,
        });
        g.edges.push(GEdge {
            from: 1,
            to: 2,
            channel: Some(channel),
            span,
        });
    }

    fn check_gate_kind(&mut self, kind: &GateKindSpec, span: Option<Span>) {
        if let GateKindSpec::Table { inputs, rows } = kind {
            let expected = 1usize << (*inputs).min(24);
            if *inputs > 24 || rows.len() != expected {
                self.push(
                    "IVL039",
                    Severity::Error,
                    span,
                    format!(
                        "truth table with {inputs} input(s) needs {expected} rows, got {}",
                        rows.len()
                    ),
                );
            }
        }
    }

    fn graph_pass(&mut self, g: &Graph<'_>) {
        // dangling / undriven / unreachable nodes
        for (i, node) in g.nodes.iter().enumerate() {
            let (ins, outs) = (g.in_degree[i], g.out_degree[i]);
            match node.kind {
                GKind::Input if outs == 0 => self.push(
                    "IVL003",
                    Severity::Warning,
                    node.span,
                    format!("input {:?} drives nothing", node.name),
                ),
                GKind::Output if ins == 0 => self.push(
                    "IVL004",
                    Severity::Error,
                    node.span,
                    format!("output port {:?} is driven by no gate", node.name),
                ),
                GKind::Gate if ins == 0 => self.push(
                    "IVL003",
                    Severity::Warning,
                    node.span,
                    format!(
                        "gate {:?} has no driver (its inputs never change)",
                        node.name
                    ),
                ),
                GKind::Gate if outs == 0 => self.push(
                    "IVL003",
                    Severity::Warning,
                    node.span,
                    format!("gate {:?} drives nothing", node.name),
                ),
                _ => {}
            }
        }
        let reachable = g.reachable_from_inputs();
        for (i, node) in g.nodes.iter().enumerate() {
            if node.kind != GKind::Input && !reachable[i] && g.in_degree[i] > 0 {
                self.push(
                    "IVL005",
                    Severity::Warning,
                    node.span,
                    format!("node {:?} is unreachable from any input", node.name),
                );
            }
        }

        // combinational cycles: an SCC whose zero-minimum-delay edges
        // alone still close a cycle deadlocks the simulator (IVL001);
        // feedback through genuinely delayed edges is legal (IVL002).
        let scc = g.sccs();
        for component in &scc.components {
            let is_cycle = component.len() > 1
                || g.edges
                    .iter()
                    .any(|e| e.from == e.to && component.contains(&e.from));
            if !is_cycle {
                continue;
            }
            let names: Vec<&str> = component
                .iter()
                .map(|&i| g.nodes[i].name.as_str())
                .collect();
            let span = component.iter().find_map(|&i| g.nodes[i].span);
            let in_component: HashSet<usize> = component.iter().copied().collect();
            let zero_edges: Vec<&GEdge<'_>> = g
                .edges
                .iter()
                .filter(|e| {
                    in_component.contains(&e.from)
                        && in_component.contains(&e.to)
                        && self.edge_is_zero_delay(e)
                })
                .collect();
            if has_cycle(component, &zero_edges) {
                self.push(
                    "IVL001",
                    Severity::Error,
                    span,
                    format!(
                        "combinational cycle with zero minimum delay through {{{}}} \
                         (every edge delivers instantaneously; the simulation cannot make progress)",
                        names.join(", ")
                    ),
                );
            } else {
                self.push(
                    "IVL002",
                    Severity::Info,
                    span,
                    format!("delayed feedback loop through {{{}}}", names.join(", ")),
                );
            }
        }
    }

    fn edge_is_zero_delay(&mut self, e: &GEdge<'_>) -> bool {
        match e.channel {
            None => true,
            Some(c) => {
                let facts = self.check_channel(c);
                facts.builds && facts.zero_delay
            }
        }
    }

    /// IVL015: the calendar queue sizes buckets from the smallest
    /// `delay_hint()` and spans 4x the largest; a spread beyond the
    /// bucket-count clamp (16384 buckets) parks most events in the
    /// overflow level.
    fn hint_spread(&mut self, g: &Graph<'_>) {
        let mut min_hint = f64::INFINITY;
        let mut max_hint: f64 = 0.0;
        let mut span = None;
        for e in &g.edges {
            let Some(c) = e.channel else { continue };
            let facts = self.check_channel(c);
            if let Some(h) = facts.hint {
                if h > 0.0 {
                    if h < min_hint {
                        span = e.span;
                    }
                    min_hint = min_hint.min(h);
                    max_hint = max_hint.max(h);
                }
            }
        }
        if min_hint.is_finite() && max_hint / min_hint > 4096.0 {
            self.push(
                "IVL015",
                Severity::Warning,
                span,
                format!(
                    "delay hints spread from {min_hint} to {max_hint} (> 4096x): \
                     the calendar event queue degenerates to its overflow level"
                ),
            );
        }
    }

    // ---- pass 3: stimulus hazard analysis ----

    fn hazard_pass(&mut self, g: &Graph<'_>, scenarios: &[ScenarioSpec]) {
        let scc = g.sccs();
        let cyclic: HashSet<usize> = scc
            .components
            .iter()
            .filter(|c| {
                c.len() > 1
                    || g.edges
                        .iter()
                        .any(|e| e.from == e.to && c.contains(&e.from))
            })
            .flatten()
            .copied()
            .collect();
        let order = g.topo_order(&cyclic);
        // edge index -> (first scenario label, death count)
        let mut deaths: HashMap<usize, (String, usize)> = HashMap::new();
        for s in scenarios {
            let mut width: Vec<Option<f64>> = vec![None; g.nodes.len()];
            for (port, sig) in &s.inputs {
                if let Some(idx) = g.nodes.iter().position(|n| n.name == *port) {
                    if let Some(w) = min_pulse_width(sig) {
                        width[idx] = Some(w);
                    }
                }
            }
            for &v in &order {
                let Some(w) = width[v] else { continue };
                if w <= DEAD_WIDTH {
                    continue;
                }
                for &ei in &g.out_edges[v] {
                    let e = &g.edges[ei];
                    if cyclic.contains(&e.to) {
                        continue;
                    }
                    let w_out = match e.channel {
                        None => Some(w),
                        Some(c) => self.pulse_response(c, w),
                    };
                    let Some(w_out) = w_out else { continue };
                    if w_out <= DEAD_WIDTH {
                        deaths
                            .entry(ei)
                            .and_modify(|(_, n)| *n += 1)
                            .or_insert_with(|| (s.label.clone(), 1));
                        continue;
                    }
                    let slot = &mut width[e.to];
                    *slot = Some(slot.map_or(w_out, |prev| prev.min(w_out)));
                }
            }
        }
        let mut dead_edges: Vec<(usize, (String, usize))> = deaths.into_iter().collect();
        dead_edges.sort_by_key(|(ei, _)| *ei);
        for (ei, (label, n)) in dead_edges {
            let e = &g.edges[ei];
            let more = if n > 1 {
                format!(" (and {} more scenario(s))", n - 1)
            } else {
                String::new()
            };
            self.push(
                "IVL020",
                Severity::Warning,
                e.span,
                format!(
                    "scenario {label:?}: stimulus provably cancels in the channel \
                     {:?} -> {:?}{more}",
                    g.nodes[e.from].name, g.nodes[e.to].name
                ),
            );
        }
    }

    /// The surviving output pulse width for an isolated input pulse of
    /// `width` through this channel, probed against the pulse-extending
    /// adversary for `eta` channels (so a death is a death under *every*
    /// admissible noise sequence). `None` when the channel cannot be
    /// probed or the budget ran out.
    fn pulse_response(&mut self, c: &ChannelSpec, width: f64) -> Option<f64> {
        if !(width.is_finite() && width > 0.0) {
            return None;
        }
        let key = (Self::channel_key(c), width.to_bits());
        if let Some(cached) = self.probe_cache.get(&key) {
            return *cached;
        }
        if self.probes_left == 0 {
            self.truncated = true;
            return None;
        }
        self.probes_left -= 1;
        let result = self.probe_once(c, width);
        self.probe_cache.insert(key, result);
        result
    }

    fn probe_once(&mut self, c: &ChannelSpec, width: f64) -> Option<f64> {
        let facts = self.check_channel(c);
        if !facts.builds {
            return None;
        }
        let mut channel = if c.kind == "eta" {
            // the adversary may only *shrink* the surviving width, so
            // probe against the one that extends pulses the most
            let params = extending_params(&c.params);
            self.registry
                .build(&c.kind, &params)
                .or_else(|_| self.registry.build(&c.kind, &c.params))
                .ok()?
        } else {
            self.registry.build(&c.kind, &c.params).ok()?
        };
        let input = Signal::pulse(0.0, width).ok()?;
        let out = apply_online(&mut channel, &input);
        let t = out.transitions();
        Some(match (t.first(), t.get(1)) {
            (Some(a), Some(b)) => b.time - a.time,
            (Some(_), None) => width,
            _ => 0.0,
        })
    }

    // ------------------------------------------------------------------
    // Analog workload: pass 4
    // ------------------------------------------------------------------

    fn lint_analog(&mut self, a: &AnalogSpec) {
        self.check_workers(a.workers);
        if a.sweep.widths.is_empty() {
            self.push(
                "IVL034",
                Severity::Error,
                self.spans.widths,
                "sweep: the width axis is empty (the sweep would silently measure nothing)"
                    .to_owned(),
            );
        }
        for w in &a.sweep.widths {
            if !(w.is_finite() && *w > 0.0) {
                self.push(
                    "IVL035",
                    Severity::Error,
                    self.spans.widths,
                    format!("sweep: width axis entries must be finite and > 0, got {w}"),
                );
                break;
            }
        }
        for (value, what) in [
            (a.sweep.settle, "sweep: field \"settle\""),
            (a.sweep.tail, "sweep: field \"tail\""),
            (a.sweep.slew, "sweep: field \"slew\""),
        ] {
            self.check_finite(value, what, self.spans.widths);
        }
        if !(a.sweep.dt.is_finite() && a.sweep.dt > 0.0) {
            self.push(
                "IVL035",
                Severity::Error,
                self.spans.widths,
                format!(
                    "sweep: field \"dt\" must be finite and > 0, got {}",
                    a.sweep.dt
                ),
            );
        }
        if let crate::spec::AnalogTask::Deviations {
            reference: ReferenceSpec::Empirical { up, down },
            ..
        } = &a.task
        {
            if up.is_empty() || down.is_empty() {
                self.push(
                    "IVL034",
                    Severity::Error,
                    self.spans.workload,
                    "empirical reference with an empty sample set".to_owned(),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // SPF workload: passes 2 and 3
    // ------------------------------------------------------------------

    fn lint_spf(&mut self, s: &SpfSpec) {
        for (v, what) in [
            (s.eta_minus, "spf: eta_minus"),
            (s.eta_plus, "spf: eta_plus"),
        ] {
            self.check_finite(v, what, self.spans.workload);
        }
        if s.eta_minus < 0.0 || s.eta_plus < 0.0 {
            self.push(
                "IVL035",
                Severity::Error,
                self.spans.workload,
                format!(
                    "spf: eta bounds must be >= 0, got eta_minus = {}, eta_plus = {}",
                    s.eta_minus, s.eta_plus
                ),
            );
            return;
        }
        let span = self.spans.delay;
        match &s.delay {
            DelaySpec::Exp { tau, t_p, v_th } => {
                match ivl_core::delay::ExpChannel::new(*tau, *t_p, *v_th) {
                    Ok(d) => self.lint_spf_pair(&d, s, span),
                    Err(e) => self.push(
                        "IVL010",
                        Severity::Error,
                        span,
                        format!("spf: exp delay family rejected: {e}"),
                    ),
                }
            }
            DelaySpec::Rational { a, b, c } => {
                match ivl_core::delay::RationalPair::new(*a, *b, *c) {
                    Ok(d) => self.lint_spf_pair(&d, s, span),
                    Err(e) => self.push(
                        "IVL010",
                        Severity::Error,
                        span,
                        format!("spf: rational delay family rejected: {e}"),
                    ),
                }
            }
        }
        if let SpfTask::Simulate { input, horizon, .. } = &s.task {
            self.check_signal(input, "spf simulate input", self.spans.workload);
            self.check_finite(*horizon, "spf: simulate horizon", self.spans.workload);
        }
    }

    fn lint_spf_pair<D: DelayPair>(&mut self, pair: &D, s: &SpfSpec, span: Option<Span>) {
        self.verify_pair(pair, Some((s.eta_minus, s.eta_plus)), "spf delay", span);
        // Lemma 4 shadow: a simulated input pulse at or below the filter
        // bound is provably cancelled in the first channel, so the run
        // can only show the trivial outcome.
        let has_error = self.has_error_for(span);
        if has_error {
            return;
        }
        if let SpfTask::Simulate { input, .. } = &s.task {
            let Ok(bounds) = EtaBounds::new(s.eta_minus, s.eta_plus) else {
                return;
            };
            let Ok(theory) = ivl_spf::SpfTheory::compute(pair, bounds) else {
                return;
            };
            if let Some(w) = min_pulse_width(input) {
                if w <= theory.filter_bound {
                    self.push(
                        "IVL021",
                        Severity::Info,
                        self.spans.workload,
                        format!(
                            "spf: input pulse width {w} is at or below the filter bound \
                             {:.6} (Lemma 4): the pulse is provably cancelled",
                            theory.filter_bound
                        ),
                    );
                }
            }
        }
    }

    fn has_error_for(&self, span: Option<Span>) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.span == span)
    }
}

/// Whether `name` names a node of the topology, without materializing
/// it: netlists are scanned, generators use their closed-form naming
/// scheme (`inv{i}` for chains, `g{x}_{y}` for grids, `n{i}` for
/// random DAGs, `t{level}_{i}` for fat trees, plus the ports `a`/`y`).
fn topology_has_node(topology: &TopologySpec, name: &str) -> bool {
    let ports = name == "a" || name == "y";
    match topology {
        TopologySpec::Netlist(n) => n.nodes.iter().any(|node| match node {
            NodeSpec::Input { name: n }
            | NodeSpec::Output { name: n }
            | NodeSpec::Gate { name: n, .. } => n == name,
        }),
        TopologySpec::InverterChain { stages, .. } => {
            ports || canonical_index(name, "inv").is_some_and(|i| i < u64::from(*stages))
        }
        TopologySpec::Grid2d { width, height, .. } => {
            ports
                || canonical_pair(name, "g")
                    .is_some_and(|(x, y)| x < u64::from(*width) && y < u64::from(*height))
        }
        TopologySpec::RandomDag { nodes, .. } => {
            ports || canonical_index(name, "n").is_some_and(|i| i < u64::from(*nodes))
        }
        TopologySpec::FatTree { depth, .. } => {
            ports
                || canonical_pair(name, "t").is_some_and(|(level, i)| {
                    level <= u64::from(*depth) && i < 1u64 << (u64::from(*depth) - level).min(63)
                })
        }
    }
}

/// Parses `"{prefix}{i}"` where `i` is rendered canonically (no sign,
/// no leading zeros), returning `i`.
fn canonical_index(name: &str, prefix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?;
    let i: u64 = digits.parse().ok()?;
    (i.to_string() == digits).then_some(i)
}

/// Parses `"{prefix}{x}_{y}"` with canonically rendered coordinates.
fn canonical_pair(name: &str, prefix: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix(prefix)?;
    let (x, y) = rest.split_once('_')?;
    let xv: u64 = x.parse().ok()?;
    let yv: u64 = y.parse().ok()?;
    (xv.to_string() == x && yv.to_string() == y).then_some((xv, yv))
}

/// Rebuilds `eta` parameters with the pulse-extending adversary (and
/// without the now-meaningless noise-source parameters).
fn extending_params(params: &ChannelParams) -> ChannelParams {
    let mut out = ChannelParams::new();
    for (name, v) in params.entries() {
        if matches!(name.as_str(), "noise" | "seed" | "sigma" | "shift") {
            continue;
        }
        out = match v {
            ParamValue::Num(x) => out.with_num(name.clone(), *x),
            ParamValue::Int(x) => out.with_int(name.clone(), *x),
            ParamValue::Text(s) => out.with_text(name.clone(), s.clone()),
            _ => out,
        };
    }
    out.with_text("noise", "extending")
}

/// The smallest pulse width (or inter-transition gap) a signal spec
/// presents to the circuit, if it presents any.
fn min_pulse_width(s: &SignalSpec) -> Option<f64> {
    match s {
        SignalSpec::Zero => None,
        SignalSpec::Pulse { width, .. } => Some(*width),
        SignalSpec::Train { pulses } => pulses
            .iter()
            .map(|(_, w)| *w)
            .min_by(f64::total_cmp)
            .filter(|w| w.is_finite()),
        SignalSpec::Times { times, .. } => times
            .windows(2)
            .map(|w| w[1] - w[0])
            .min_by(f64::total_cmp)
            .filter(|w| w.is_finite()),
    }
}

// ======================================================================
// Graph scaffolding
// ======================================================================

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GKind {
    Input,
    Output,
    Gate,
}

struct GNode {
    name: String,
    kind: GKind,
    span: Option<Span>,
}

struct GEdge<'a> {
    from: usize,
    to: usize,
    channel: Option<&'a ChannelSpec>,
    span: Option<Span>,
}

#[derive(Default)]
struct Graph<'a> {
    nodes: Vec<GNode>,
    edges: Vec<GEdge<'a>>,
    out_edges: Vec<Vec<usize>>,
    in_degree: Vec<usize>,
    out_degree: Vec<usize>,
}

struct SccResult {
    components: Vec<Vec<usize>>,
}

impl<'a> Graph<'a> {
    fn index(&mut self) {
        self.out_edges = vec![Vec::new(); self.nodes.len()];
        self.in_degree = vec![0; self.nodes.len()];
        self.out_degree = vec![0; self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            self.out_edges[e.from].push(i);
            self.out_degree[e.from] += 1;
            self.in_degree[e.to] += 1;
        }
    }

    fn reachable_from_inputs(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == GKind::Input)
            .map(|(i, _)| i)
            .collect();
        for &i in &stack {
            seen[i] = true;
        }
        while let Some(v) = stack.pop() {
            for &ei in &self.out_edges[v] {
                let to = self.edges[ei].to;
                if !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        seen
    }

    /// Strongly connected components via iterative Kosaraju; component
    /// order and member order are deterministic.
    fn sccs(&self) -> SccResult {
        let n = self.nodes.len();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            // iterative post-order DFS
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            seen[start] = true;
            while let Some(top) = stack.last_mut() {
                let (v, next) = *top;
                if next < self.out_edges[v].len() {
                    top.1 += 1;
                    let to = self.edges[self.out_edges[v][next]].to;
                    if !seen[to] {
                        seen[to] = true;
                        stack.push((to, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            rev[e.to].push(e.from);
        }
        let mut component = vec![usize::MAX; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        for &start in order.iter().rev() {
            if component[start] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut members = vec![start];
            component[start] = id;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &u in &rev[v] {
                    if component[u] == usize::MAX {
                        component[u] = id;
                        members.push(u);
                        stack.push(u);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        SccResult { components }
    }

    /// A topological order of the acyclic part (nodes in `cyclic` are
    /// excluded; their downstream still appears, fed only by what
    /// reaches it acyclically).
    fn topo_order(&self, cyclic: &HashSet<usize>) -> Vec<usize> {
        let mut indeg: Vec<usize> = (0..self.nodes.len())
            .map(|v| {
                self.edges
                    .iter()
                    .filter(|e| e.to == v && !cyclic.contains(&e.from) && !cyclic.contains(&e.to))
                    .count()
            })
            .collect();
        let mut queue: Vec<usize> = (0..self.nodes.len())
            .filter(|v| !cyclic.contains(v) && indeg[*v] == 0)
            .collect();
        let mut order = Vec::with_capacity(queue.len());
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &ei in &self.out_edges[v] {
                let to = self.edges[ei].to;
                if cyclic.contains(&to) {
                    continue;
                }
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push(to);
                }
            }
        }
        order
    }
}

/// `true` if the given edges close a cycle within `component`.
fn has_cycle(component: &[usize], edges: &[&GEdge<'_>]) -> bool {
    if edges.iter().any(|e| e.from == e.to) {
        return true;
    }
    // Kahn's algorithm on the restricted subgraph: leftover nodes = cycle
    let mut indeg: HashMap<usize, usize> = component.iter().map(|&v| (v, 0)).collect();
    for e in edges {
        *indeg.get_mut(&e.to).expect("edge within component") += 1;
    }
    let mut queue: Vec<usize> = component
        .iter()
        .copied()
        .filter(|v| indeg[v] == 0)
        .collect();
    let mut removed = 0;
    while let Some(v) = queue.pop() {
        removed += 1;
        for e in edges {
            if e.from == v {
                let d = indeg.get_mut(&e.to).expect("edge within component");
                *d -= 1;
                if *d == 0 {
                    queue.push(e.to);
                }
            }
        }
    }
    removed < component.len()
}
