//! The one atomic-write primitive shared by every on-disk artifact.
//!
//! Checkpoint sidecars ([`crate::Experiment::resume`]) and the
//! experiment service's disk cache (`IVL_CACHE_DIR`) both persist
//! `faithful/1` documents that must never be observed half-written: a
//! kill mid-write has to leave either the previous complete file or no
//! file, never a truncated one. Both go through [`write_atomic`] so the
//! crash discipline cannot diverge between the two stores: render the
//! full payload, write it to `<path>.tmp`, then `rename` over `path`
//! (atomic on POSIX filesystems).
//!
//! A stale `<path>.tmp` left behind by a kill between the write and the
//! rename is harmless: the next write truncates and replaces it, and
//! readers never look at `.tmp` paths.

use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically via a `<path>.tmp` sidecar and
/// rename.
///
/// # Errors
///
/// On failure returns the underlying I/O error together with the path
/// the failing operation touched (the temporary on write failures, the
/// destination on rename failures), so callers can wrap it in their own
/// error type without losing the location.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), (std::io::Error, PathBuf)> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| (e, tmp.clone()))?;
    std::fs::rename(&tmp, path).map_err(|e| (e, path.to_path_buf()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_replaces_previous_content_atomically() {
        let dir = std::env::temp_dir().join(format!("faithful_atomicio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.spec");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // a stale .tmp from an interrupted earlier write is overwritten,
        // not an error
        std::fs::write(dir.join("artifact.spec.tmp"), b"torn hal").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("artifact.spec.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failures_name_the_path_they_touched() {
        let missing = Path::new("/nonexistent-dir-for-faithful-tests/x.spec");
        let (err, path) = write_atomic(missing, b"payload").unwrap_err();
        assert_eq!(path, missing.with_extension("spec.tmp"));
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
