//! `faithful-lint` — static diagnostics for `faithful/1` experiment
//! specs, without running a single simulation event.
//!
//! ```text
//! faithful-lint [--deny-warnings] [--service] [--quiet] FILE.spec ... [--markdown FILE.md ...]
//! ```
//!
//! Plain arguments are spec documents; `--markdown` files are scanned
//! for fenced code blocks whose first line starts with `faithful/`, and
//! every such block is linted with line numbers offset to the enclosing
//! file. Diagnostics print as `file:line:col: severity[IVLnnn]: message`.
//! `--service` lints in experiment-service context, adding diagnostics
//! about fields the `faithful-serve` daemon overrides (`IVL050`).
//!
//! Exit status: `0` clean (or warnings only), `1` if any
//! `Error`-severity diagnostic was found (or any warning under
//! `--deny-warnings`), `2` on usage or I/O errors.

use std::process::ExitCode;

use faithful::core::factory::ChannelRegistry;
use faithful::{lint_text, lint_text_for_service, Severity};

struct Options {
    deny_warnings: bool,
    service: bool,
    quiet: bool,
    specs: Vec<String>,
    markdown: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        service: false,
        quiet: false,
        specs: Vec::new(),
        markdown: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--service" => opts.service = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--markdown" => {
                let file = it
                    .next()
                    .ok_or_else(|| "--markdown needs a file argument".to_owned())?;
                opts.markdown.push(file.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            other => opts.specs.push(other.to_owned()),
        }
    }
    if opts.specs.is_empty() && opts.markdown.is_empty() {
        return Err("no input files".to_owned());
    }
    Ok(opts)
}

/// A spec document to lint: its source file, the text, and the line
/// offset of the text within that file (0 for standalone specs).
struct Input {
    file: String,
    text: String,
    line_offset: u32,
}

/// Extracts every fenced code block whose first line starts with
/// `faithful/` from a markdown document.
fn spec_blocks(file: &str, markdown: &str) -> Vec<Input> {
    let mut blocks = Vec::new();
    let mut in_block = false;
    let mut block_start = 0u32;
    let mut block_lines: Vec<&str> = Vec::new();
    for (i, line) in markdown.lines().enumerate() {
        let fence = line.trim_start().starts_with("```");
        if !in_block && fence {
            in_block = true;
            block_start = u32::try_from(i).unwrap_or(u32::MAX) + 1;
            block_lines.clear();
        } else if in_block && fence {
            in_block = false;
            if block_lines
                .first()
                .is_some_and(|l| l.trim_start().starts_with("faithful/"))
            {
                blocks.push(Input {
                    file: file.to_owned(),
                    text: block_lines.join("\n"),
                    line_offset: block_start,
                });
            }
        } else if in_block {
            block_lines.push(line);
        }
    }
    blocks
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("faithful-lint: {msg}");
            }
            eprintln!(
                "usage: faithful-lint [--deny-warnings] [--service] [--quiet] FILE.spec ... \
                 [--markdown FILE.md ...]"
            );
            return ExitCode::from(2);
        }
    };

    let mut inputs = Vec::new();
    for file in &opts.specs {
        match std::fs::read_to_string(file) {
            Ok(text) => inputs.push(Input {
                file: file.clone(),
                text,
                line_offset: 0,
            }),
            Err(e) => {
                eprintln!("faithful-lint: {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for file in &opts.markdown {
        match std::fs::read_to_string(file) {
            Ok(text) => inputs.extend(spec_blocks(file, &text)),
            Err(e) => {
                eprintln!("faithful-lint: {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let registry = ChannelRegistry::with_builtins();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut documents = 0usize;
    for input in &inputs {
        documents += 1;
        let lint = if opts.service {
            lint_text_for_service
        } else {
            lint_text
        };
        let report = match lint(&input.text, &registry) {
            Ok(report) => report,
            Err(e) => {
                // a spec that does not even parse is an error finding
                errors += 1;
                let at = e
                    .span()
                    .map(|s| format!("{}:{}", s.line + input.line_offset, s.column))
                    .unwrap_or_else(|| "-".to_owned());
                println!("{}:{at}: error[parse]: {}", input.file, e.message());
                continue;
            }
        };
        for d in report.diagnostics() {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => {}
            }
            let at = d
                .span
                .map(|s| format!("{}:{}", s.line + input.line_offset, s.column))
                .unwrap_or_else(|| "-".to_owned());
            println!(
                "{}:{at}: {}[{}]: {}",
                input.file, d.severity, d.code, d.message
            );
        }
    }
    if !opts.quiet {
        eprintln!(
            "faithful-lint: {documents} document(s), {errors} error(s), {warnings} warning(s)"
        );
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
