//! `faithful-serve` — the experiment service daemon: `faithful/1`
//! specs over TCP with content-addressed result caching.
//!
//! ```text
//! faithful-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!                [--per-connection N] [--cache-entries N]
//!                [--cache-bytes N] [--cache-dir DIR]
//! ```
//!
//! Defaults come from the environment where it matters: `--addr` falls
//! back to `IVL_SERVE_ADDR` (then `127.0.0.1:7433`), `--cache-dir` to
//! `IVL_CACHE_DIR` (unset means the cache is memory-only). Port 0 binds
//! an ephemeral port; the daemon prints the resolved address as
//! `faithful-serve: listening on HOST:PORT` on stdout either way, so
//! scripts can discover it.
//!
//! On SIGTERM or SIGINT the daemon drains gracefully: it stops
//! accepting connections, rejects new submissions with typed `shutdown`
//! errors, finishes every already-accepted job, prints a drain summary
//! and exits 0. See the `faithful::service` module docs for the frame
//! protocol and cache semantics.
//!
//! Exit status: `0` after a clean drain, `2` on usage or bind errors.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use faithful::service::{ServeConfig, Server, ENV_ADDR, ENV_CACHE_DIR};

/// Set by the signal handler; polled by the main thread.
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // A lock-free flag store is all the handler does; the drain itself
    // runs on the main thread.
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig {
        addr: std::env::var(ENV_ADDR).unwrap_or_else(|_| "127.0.0.1:7433".to_owned()),
        cache_dir: std::env::var_os(ENV_CACHE_DIR).map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let number = |flag: &str, raw: &str| -> Result<usize, String> {
        raw.parse()
            .map_err(|_| format!("{flag} needs a non-negative integer, got {raw:?}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = value("--addr", &mut it)?,
            "--workers" => config.workers = number("--workers", &value("--workers", &mut it)?)?,
            "--queue" => {
                config.queue_capacity = number("--queue", &value("--queue", &mut it)?)?;
            }
            "--per-connection" => {
                config.per_connection =
                    number("--per-connection", &value("--per-connection", &mut it)?)?;
            }
            "--cache-entries" => {
                config.cache_entries =
                    number("--cache-entries", &value("--cache-entries", &mut it)?)?;
            }
            "--cache-bytes" => {
                config.cache_bytes = number("--cache-bytes", &value("--cache-bytes", &mut it)?)?;
            }
            "--cache-dir" => {
                config.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir", &mut it)?));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("faithful-serve: {msg}");
            }
            eprintln!(
                "usage: faithful-serve [--addr HOST:PORT] [--workers N] [--queue N] \\
                 [--per-connection N] [--cache-entries N] [--cache-bytes N] [--cache-dir DIR]"
            );
            return ExitCode::from(2);
        }
    };

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("faithful-serve: bind failed: {e}");
            return ExitCode::from(2);
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("faithful-serve: {e}");
            return ExitCode::from(2);
        }
    };
    install_signal_handlers();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    // Scripts (the CI smoke job, the service tests) parse this line.
    println!("faithful-serve: listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !STOP.load(Ordering::SeqCst) && !join.is_finished() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    let summary = match join.join() {
        Ok(summary) => summary,
        Err(_) => {
            eprintln!("faithful-serve: server thread panicked");
            return ExitCode::from(2);
        }
    };
    println!(
        "faithful-serve: drained; {} connection(s), {} job(s) run, {} cache hit(s), \
         {} rejected, {} error(s)",
        summary.connections, summary.jobs, summary.cache_hits, summary.rejected, summary.errors
    );
    ExitCode::SUCCESS
}
