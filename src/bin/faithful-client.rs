//! `faithful-client` — batch submitter for a `faithful-serve` daemon.
//!
//! ```text
//! faithful-client [--addr HOST:PORT] [--connections N] [--pipeline K]
//!                 [--repeat R] [--expect-cached] [--quiet] FILE.spec ...
//! ```
//!
//! Reads every spec file, submits the whole list `R` times (default 1)
//! across `N` concurrent connections with up to `K` pipelined requests
//! per connection, and reports throughput (specs/sec) plus p50/p99
//! client-observed latency. `--addr` falls back to `IVL_SERVE_ADDR`,
//! then `127.0.0.1:7433`. `--expect-cached` asserts that *every*
//! response was served from the daemon's cache — the CI smoke job uses
//! it to pin the hot-resubmission path.
//!
//! Exit status: `0` when every spec succeeded (and, under
//! `--expect-cached`, every response was a cache hit), `1` when any
//! served response was an error or a cache expectation failed, `2` on
//! usage or I/O errors.

use std::process::ExitCode;

use faithful::service::{run_batch, BatchOptions, ENV_ADDR};

struct Options {
    addr: String,
    batch: BatchOptions,
    repeat: usize,
    expect_cached: bool,
    quiet: bool,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: std::env::var(ENV_ADDR).unwrap_or_else(|_| "127.0.0.1:7433".to_owned()),
        batch: BatchOptions::default(),
        repeat: 1,
        expect_cached: false,
        quiet: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let number = |flag: &str, raw: &str| -> Result<usize, String> {
        raw.parse()
            .map_err(|_| format!("{flag} needs a positive integer, got {raw:?}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr", &mut it)?,
            "--connections" => {
                opts.batch.connections =
                    number("--connections", &value("--connections", &mut it)?)?.max(1);
            }
            "--pipeline" => {
                opts.batch.pipeline = number("--pipeline", &value("--pipeline", &mut it)?)?.max(1);
            }
            "--repeat" => opts.repeat = number("--repeat", &value("--repeat", &mut it)?)?.max(1),
            "--expect-cached" => opts.expect_cached = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => opts.files.push(other.to_owned()),
        }
    }
    if opts.files.is_empty() {
        return Err("no spec files".to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("faithful-client: {msg}");
            }
            eprintln!(
                "usage: faithful-client [--addr HOST:PORT] [--connections N] [--pipeline K] \\
                 [--repeat R] [--expect-cached] [--quiet] FILE.spec ..."
            );
            return ExitCode::from(2);
        }
    };

    let mut batch = Vec::with_capacity(opts.files.len() * opts.repeat);
    for file in &opts.files {
        match std::fs::read_to_string(file) {
            Ok(text) => batch.push(text),
            Err(e) => {
                eprintln!("faithful-client: {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let one_round = batch.clone();
    for _ in 1..opts.repeat {
        batch.extend(one_round.iter().cloned());
    }

    let report = match run_batch(&opts.addr, &batch, &opts.batch) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("faithful-client: {}: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };

    for (index, message) in &report.errors {
        let file = &opts.files[index % opts.files.len()];
        eprintln!("faithful-client: {file}: {message}");
    }
    if !opts.quiet {
        let quantile = |q: f64| {
            report
                .latency_ms(q)
                .map_or_else(|| "-".to_owned(), |ms| format!("{ms:.2}ms"))
        };
        eprintln!(
            "faithful-client: {} submitted, {} ok ({} cached), {} error(s) in {:.2?} \
             ({:.0} specs/sec, p50 {}, p99 {})",
            report.submitted,
            report.ok,
            report.cached,
            report.errors.len(),
            report.elapsed,
            report.specs_per_sec(),
            quantile(0.5),
            quantile(0.99),
        );
    }
    if !report.errors.is_empty() {
        return ExitCode::from(1);
    }
    if opts.expect_cached && report.cached != report.submitted {
        eprintln!(
            "faithful-client: expected every response from the cache, got {} of {}",
            report.cached, report.submitted
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
