//! Declarative experiment descriptions.
//!
//! An [`ExperimentSpec`] describes a complete workload — what channel,
//! circuit, analog chain or SPF instance to build, what stimuli to
//! apply, how to integrate/simulate, how many workers to fan over, and
//! which outputs to keep — as plain data. Specs serialize to a
//! versioned text form via [`Display`](std::fmt::Display) /
//! [`FromStr`](std::str::FromStr) with a round-trip guarantee for every
//! finite spec, so experiments can be stored, diffed, queued and
//! shipped to workers. [`Experiment`](crate::Experiment) executes them.
//!
//! ```
//! use faithful::{ExperimentSpec, SignalSpec, ChannelSpec, WorkloadSpec, ChannelRunSpec};
//!
//! let spec = ExperimentSpec::channel(
//!     ChannelSpec::involution_exp(1.0, 0.5, 0.5),
//!     SignalSpec::pulse(0.0, 3.0),
//! );
//! let text = spec.to_string();
//! let back: ExperimentSpec = text.parse().unwrap();
//! assert_eq!(spec, back);
//! ```

use std::fmt;
use std::str::FromStr;

use ivl_core::factory::{ChannelParams, ParamValue};

use crate::error::SpecError;
use crate::value::{parse_document, render_document, Value, ValueKind};

/// A complete, serializable description of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// The workload to run.
    pub workload: WorkloadSpec,
}

/// What kind of workload an experiment runs — one variant per layer of
/// the model stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadSpec {
    /// Apply a single channel to a stimulus signal (`ivl_core`).
    Channel(ChannelRunSpec),
    /// Sweep scenarios over a digital circuit (`ivl_circuit`).
    Digital(DigitalSpec),
    /// Characterize / probe the analog substrate (`ivl_analog`).
    Analog(AnalogSpec),
    /// Short-Pulse-Filtration theory and simulation (`ivl_spf`).
    Spf(SpfSpec),
}

/// A channel constructible by name through a
/// [`ChannelRegistry`](ivl_core::factory::ChannelRegistry): a kind
/// string plus flat parameters.
///
/// Kind strings and parameter names must be identifiers
/// (`[A-Za-z_][A-Za-z0-9_]*`) for the text form to round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSpec {
    /// The registered factory kind (`pure`, `inertial`, `ddm`,
    /// `involution`, `eta`, or a custom registration).
    pub kind: String,
    /// The factory parameters.
    pub params: ChannelParams,
}

impl ChannelSpec {
    /// A channel spec with no parameters yet.
    #[must_use]
    pub fn new(kind: impl Into<String>) -> Self {
        ChannelSpec {
            kind: kind.into(),
            params: ChannelParams::new(),
        }
    }

    /// Appends a real-valued parameter.
    #[must_use]
    pub fn with_num(mut self, name: impl Into<String>, value: f64) -> Self {
        self.params = self.params.with_num(name, value);
        self
    }

    /// Appends an integer parameter.
    #[must_use]
    pub fn with_int(mut self, name: impl Into<String>, value: u64) -> Self {
        self.params = self.params.with_int(name, value);
        self
    }

    /// Appends a textual parameter.
    #[must_use]
    pub fn with_text(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params = self.params.with_text(name, value);
        self
    }

    /// A `pure` constant-delay channel.
    #[must_use]
    pub fn pure(delay: f64) -> Self {
        ChannelSpec::new("pure").with_num("delay", delay)
    }

    /// An `inertial` delay channel.
    #[must_use]
    pub fn inertial(delay: f64, window: f64) -> Self {
        ChannelSpec::new("inertial")
            .with_num("delay", delay)
            .with_num("window", window)
    }

    /// A symmetric `ddm` channel.
    #[must_use]
    pub fn ddm(t_p0: f64, t_0: f64, tau: f64) -> Self {
        ChannelSpec::new("ddm")
            .with_num("t_p0", t_p0)
            .with_num("t_0", t_0)
            .with_num("tau", tau)
    }

    /// A deterministic involution channel over an exp delay pair.
    #[must_use]
    pub fn involution_exp(tau: f64, t_p: f64, v_th: f64) -> Self {
        ChannelSpec::new("involution")
            .with_text("delay", "exp")
            .with_num("tau", tau)
            .with_num("t_p", t_p)
            .with_num("v_th", v_th)
    }

    /// An η-involution channel over an exp delay pair with the given
    /// bounds and noise source.
    #[must_use]
    pub fn eta_exp(tau: f64, t_p: f64, v_th: f64, minus: f64, plus: f64, noise: NoiseSpec) -> Self {
        let spec = ChannelSpec::new("eta")
            .with_text("delay", "exp")
            .with_num("tau", tau)
            .with_num("t_p", t_p)
            .with_num("v_th", v_th)
            .with_num("minus", minus)
            .with_num("plus", plus);
        spec.with_noise(noise)
    }

    /// Appends the parameters describing `noise` (an `eta`-kind
    /// convenience mirroring the built-in factory's vocabulary).
    #[must_use]
    pub fn with_noise(self, noise: NoiseSpec) -> Self {
        match noise {
            NoiseSpec::Zero => self.with_text("noise", "zero"),
            NoiseSpec::WorstCase => self.with_text("noise", "worst_case"),
            NoiseSpec::Extending => self.with_text("noise", "extending"),
            NoiseSpec::Uniform { seed } => {
                self.with_text("noise", "uniform").with_int("seed", seed)
            }
            NoiseSpec::Gaussian { sigma, seed } => self
                .with_text("noise", "gaussian")
                .with_num("sigma", sigma)
                .with_int("seed", seed),
            NoiseSpec::Constant { shift } => {
                self.with_text("noise", "constant").with_num("shift", shift)
            }
        }
    }
}

/// Apply one channel to one input signal.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelRunSpec {
    /// The channel, by name.
    pub channel: ChannelSpec,
    /// The stimulus.
    pub input: SignalSpec,
}

/// A binary stimulus signal as data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SignalSpec {
    /// The constant-zero signal.
    Zero,
    /// A single pulse `[at, at + width)`.
    Pulse {
        /// Rising-edge time.
        at: f64,
        /// Pulse width.
        width: f64,
    },
    /// A train of pulses given as `(start, width)` pairs.
    Train {
        /// The pulses, in increasing start order.
        pulses: Vec<(f64, f64)>,
    },
    /// An explicit transition list from an initial value.
    Times {
        /// Value "until time 0".
        initial: bool,
        /// Strictly increasing transition times.
        times: Vec<f64>,
    },
}

impl SignalSpec {
    /// A single pulse.
    #[must_use]
    pub fn pulse(at: f64, width: f64) -> Self {
        SignalSpec::Pulse { at, width }
    }

    /// A pulse train from `(start, width)` pairs.
    #[must_use]
    pub fn train(pulses: impl IntoIterator<Item = (f64, f64)>) -> Self {
        SignalSpec::Train {
            pulses: pulses.into_iter().collect(),
        }
    }

    /// An explicit transition list.
    #[must_use]
    pub fn times(initial: bool, times: impl IntoIterator<Item = f64>) -> Self {
        SignalSpec::Times {
            initial,
            times: times.into_iter().collect(),
        }
    }

    /// Builds the concrete [`Signal`](ivl_core::Signal).
    ///
    /// # Errors
    ///
    /// Propagates the signal constructor's validation errors.
    pub fn build(&self) -> Result<ivl_core::Signal, ivl_core::Error> {
        use ivl_core::{Bit, Signal};
        match self {
            SignalSpec::Zero => Ok(Signal::zero()),
            SignalSpec::Pulse { at, width } => Signal::pulse(*at, *width),
            SignalSpec::Train { pulses } => Signal::pulse_train(pulses.iter().copied()),
            SignalSpec::Times { initial, times } => {
                Signal::from_times(if *initial { Bit::One } else { Bit::Zero }, times)
            }
        }
    }
}

/// A digital scenario sweep: topology, stimuli, runner knobs, output
/// selection.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalSpec {
    /// The circuit to build.
    pub topology: TopologySpec,
    /// Simulation horizon per scenario.
    pub horizon: f64,
    /// Scheduled-event budget per scenario (`None` = runner default).
    pub max_events: Option<u64>,
    /// Worker threads (`None` = machine default).
    pub workers: Option<u32>,
    /// What a scenario failure does to the sweep (default: skip).
    pub on_failure: FailurePolicySpec,
    /// The scenarios to sweep (one scenario = one run).
    pub scenarios: Vec<ScenarioSpec>,
    /// Which outputs to materialize in the result.
    pub outputs: OutputSelect,
}

impl DigitalSpec {
    /// A sweep of `topology` to `horizon` with default knobs and no
    /// scenarios yet.
    #[must_use]
    pub fn new(topology: TopologySpec, horizon: f64) -> Self {
        DigitalSpec {
            topology,
            horizon,
            max_events: None,
            workers: None,
            on_failure: FailurePolicySpec::default(),
            scenarios: Vec::new(),
            outputs: OutputSelect::default(),
        }
    }

    /// Sets the failure policy.
    #[must_use]
    pub fn with_on_failure(mut self, on_failure: FailurePolicySpec) -> Self {
        self.on_failure = on_failure;
        self
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: u32) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the per-scenario event budget.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Appends a scenario.
    #[must_use]
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Appends many scenarios.
    #[must_use]
    pub fn with_scenarios(mut self, scenarios: impl IntoIterator<Item = ScenarioSpec>) -> Self {
        self.scenarios.extend(scenarios);
        self
    }

    /// Sets the output selection.
    #[must_use]
    pub fn with_outputs(mut self, outputs: OutputSelect) -> Self {
        self.outputs = outputs;
        self
    }
}

/// What a scenario failure does to a digital sweep — the declarative
/// mirror of [`ivl_circuit::FailurePolicy`].
///
/// Serialized as `on_failure = abort | skip | retry(attempts = n)`;
/// the field is omitted entirely for the default (`skip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicySpec {
    /// Stop dispatching on the first failure and report the failing
    /// scenario's identity as the experiment's error.
    Abort,
    /// Record failures per scenario and keep sweeping (the default).
    #[default]
    Skip,
    /// Retry failing scenarios — with the same seed — up to `attempts`
    /// extra times before recording them. Only infrastructure flakes
    /// recover; deterministic bugs fail every attempt.
    Retry {
        /// Extra attempts per failing scenario.
        attempts: u32,
    },
}

impl FailurePolicySpec {
    /// The runner-level policy this spec maps to.
    #[must_use]
    pub fn to_policy(self) -> ivl_circuit::FailurePolicy {
        match self {
            FailurePolicySpec::Abort => ivl_circuit::FailurePolicy::Abort,
            FailurePolicySpec::Skip => ivl_circuit::FailurePolicy::Skip,
            FailurePolicySpec::Retry { attempts } => ivl_circuit::FailurePolicy::Retry(attempts),
        }
    }
}

/// How to obtain the circuit of a digital experiment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologySpec {
    /// An explicit netlist (the general form).
    Netlist(NetlistSpec),
    /// Generator: an `n`-stage inverter chain `a → inv0 → … → y` with
    /// the given channel between consecutive stages and before the
    /// output port (stage initial values alternate starting at 1).
    InverterChain {
        /// Number of inverter stages.
        stages: u32,
        /// The inter-stage channel.
        channel: ChannelSpec,
    },
    /// Generator: a `width × height` 2-D lattice — `Not` gates along
    /// the top/left border, 2-input `Nand`s inside, every lattice edge
    /// carrying the given channel (see `ivl_circuit::generate::grid`).
    Grid2d {
        /// Cells per row.
        width: u32,
        /// Number of rows.
        height: u32,
        /// The lattice channel.
        channel: ChannelSpec,
    },
    /// Generator: a seeded random DAG — gate `n{i}` draws 1–2
    /// predecessors uniformly from the gates before it (see
    /// `ivl_circuit::generate::random_dag`).
    RandomDag {
        /// Number of gates.
        nodes: u32,
        /// SplitMix64 seed; `None` means the spec omitted it (the
        /// linter flags this — an unseeded random netlist is not
        /// reproducible; building defaults to 0).
        seed: Option<u64>,
        /// The edge channel.
        channel: ChannelSpec,
    },
    /// Generator: a binary reduction tree of the given depth —
    /// `2^depth` `Not` leaves fanned out from the input, `Nand`s
    /// reducing pairwise to a single root (see
    /// `ivl_circuit::generate::fat_tree`).
    FatTree {
        /// Tree depth (the root sits at this level; `2^depth` leaves).
        depth: u32,
        /// The tree-edge channel.
        channel: ChannelSpec,
    },
}

/// A circuit as data: the declarative mirror of
/// [`CircuitBuilder`](ivl_circuit::CircuitBuilder).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetlistSpec {
    /// The circuit's nodes, in creation order.
    pub nodes: Vec<NodeSpec>,
    /// The circuit's connections.
    pub edges: Vec<EdgeSpec>,
}

impl NetlistSpec {
    /// An empty netlist.
    #[must_use]
    pub fn new() -> Self {
        NetlistSpec::default()
    }

    /// Adds an input port.
    #[must_use]
    pub fn input(mut self, name: impl Into<String>) -> Self {
        self.nodes.push(NodeSpec::Input { name: name.into() });
        self
    }

    /// Adds an output port.
    #[must_use]
    pub fn output(mut self, name: impl Into<String>) -> Self {
        self.nodes.push(NodeSpec::Output { name: name.into() });
        self
    }

    /// Adds a gate with the kind's default arity.
    #[must_use]
    pub fn gate(mut self, name: impl Into<String>, kind: GateKindSpec, init: bool) -> Self {
        self.nodes.push(NodeSpec::Gate {
            name: name.into(),
            kind,
            arity: None,
            init,
        });
        self
    }

    /// Adds a zero-delay connection from `from` to pin `pin` of `to`.
    #[must_use]
    pub fn wire(mut self, from: impl Into<String>, to: impl Into<String>, pin: u32) -> Self {
        self.edges.push(EdgeSpec {
            from: from.into(),
            to: to.into(),
            pin,
            channel: None,
        });
        self
    }

    /// Adds a channel connection from `from` to pin `pin` of `to`.
    #[must_use]
    pub fn channel(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        pin: u32,
        channel: ChannelSpec,
    ) -> Self {
        self.edges.push(EdgeSpec {
            from: from.into(),
            to: to.into(),
            pin,
            channel: Some(channel),
        });
        self
    }
}

/// One node of a [`NetlistSpec`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeSpec {
    /// An input port.
    Input {
        /// Port name.
        name: String,
    },
    /// An output port.
    Output {
        /// Port name.
        name: String,
    },
    /// A Boolean gate.
    Gate {
        /// Gate name.
        name: String,
        /// The Boolean function.
        kind: GateKindSpec,
        /// Input count (`None` = the kind's default arity).
        arity: Option<u32>,
        /// Output value until time 0.
        init: bool,
    },
}

/// A gate function as data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GateKindSpec {
    /// Identity.
    Buf,
    /// Negation.
    Not,
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Parity.
    Xor,
    /// Negated parity.
    Xnor,
    /// Arbitrary lookup table: `rows[i]` is the output for the input
    /// combination with bit pattern `i` (pin 0 = LSB).
    Table {
        /// Number of inputs.
        inputs: u32,
        /// `2^inputs` output bits.
        rows: Vec<bool>,
    },
}

/// One connection of a [`NetlistSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSpec {
    /// Source node name.
    pub from: String,
    /// Target node name.
    pub to: String,
    /// Target pin.
    pub pin: u32,
    /// The channel on the edge (`None` = zero-delay port connection).
    pub channel: Option<ChannelSpec>,
}

/// One scenario of a digital sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario label (reported back in the result).
    pub label: String,
    /// Noise seed pinning every channel's RNG stream (`None` = leave
    /// streams as the worker finds them).
    pub seed: Option<u64>,
    /// Input-port assignments; unassigned ports read zero.
    pub inputs: Vec<(String, SignalSpec)>,
}

impl ScenarioSpec {
    /// An empty scenario.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        ScenarioSpec {
            label: label.into(),
            seed: None,
            inputs: Vec::new(),
        }
    }

    /// Pins the noise seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Assigns a signal to an input port.
    #[must_use]
    pub fn with_input(mut self, port: impl Into<String>, signal: SignalSpec) -> Self {
        self.inputs.push((port.into(), signal));
        self
    }
}

/// Which outputs a digital experiment materializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSelect {
    /// Keep each scenario's output-port signals (the crossings).
    pub signals: bool,
    /// Keep the aggregate sweep statistics.
    pub stats: bool,
    /// Render a VCD dump of each scenario's output ports (timescale
    /// 1 ps, one tick per 0.001 time units).
    pub vcd: bool,
    /// Restrict recording to these nodes (plus the output ports, which
    /// are always recorded). Empty means record every node and edge —
    /// the historical behaviour. On generated scale-tier netlists a
    /// non-empty watch list bounds simulation memory by the watch set
    /// instead of the netlist, and the named signals ride along in
    /// each scenario's `signals`/VCD output.
    pub watch: Vec<String>,
}

impl Default for OutputSelect {
    /// Signals and stats on, VCD off, no watch restriction.
    fn default() -> Self {
        OutputSelect {
            signals: true,
            stats: true,
            vcd: false,
            watch: Vec::new(),
        }
    }
}

impl OutputSelect {
    /// Enables the VCD dump.
    #[must_use]
    pub fn with_vcd(mut self) -> Self {
        self.vcd = true;
        self
    }

    /// Adds a node to the watch list (switching the run to selective
    /// recording).
    #[must_use]
    pub fn with_watch(mut self, node: impl Into<String>) -> Self {
        self.watch.push(node.into());
        self
    }
}

/// An analog-substrate experiment: chain, supply, sweep configuration
/// and task.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogSpec {
    /// The inverter chain to simulate.
    pub chain: ChainSpec,
    /// The supply driving it.
    pub supply: SupplySpec,
    /// The characterization sweep configuration.
    pub sweep: SweepSpec,
    /// What to compute.
    pub task: AnalogTask,
    /// Worker threads (`None` = machine default).
    pub workers: Option<u32>,
}

impl AnalogSpec {
    /// An experiment on an `n`-stage UMC-90-like chain at DC 1 V with
    /// the default sweep, performing `task`.
    #[must_use]
    pub fn new(stages: u32, task: AnalogTask) -> Self {
        AnalogSpec {
            chain: ChainSpec::umc90(stages),
            supply: SupplySpec::Dc { volts: 1.0 },
            sweep: SweepSpec::default(),
            task,
            workers: None,
        }
    }

    /// Replaces the chain.
    #[must_use]
    pub fn with_chain(mut self, chain: ChainSpec) -> Self {
        self.chain = chain;
        self
    }

    /// Replaces the supply.
    #[must_use]
    pub fn with_supply(mut self, supply: SupplySpec) -> Self {
        self.supply = supply;
        self
    }

    /// Replaces the sweep configuration.
    #[must_use]
    pub fn with_sweep(mut self, sweep: SweepSpec) -> Self {
        self.sweep = sweep;
        self
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: u32) -> Self {
        self.workers = Some(workers);
        self
    }
}

/// The analog chain as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSpec {
    /// Number of inverter stages.
    pub stages: u32,
    /// Transistor-width scaling factor (1 = nominal).
    pub width_scale: f64,
}

impl ChainSpec {
    /// A nominal UMC-90-like chain.
    #[must_use]
    pub fn umc90(stages: u32) -> Self {
        ChainSpec {
            stages,
            width_scale: 1.0,
        }
    }

    /// Scales every transistor width.
    #[must_use]
    pub fn with_width_scale(mut self, width_scale: f64) -> Self {
        self.width_scale = width_scale;
        self
    }
}

/// The supply source as data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SupplySpec {
    /// An ideal DC supply.
    Dc {
        /// Supply voltage.
        volts: f64,
    },
    /// A DC supply with a superimposed sine.
    Sine {
        /// Nominal voltage.
        nominal: f64,
        /// Relative sine amplitude (e.g. `0.01` for ±1 %).
        amplitude: f64,
        /// Sine period (ps).
        period: f64,
        /// Phase (degrees).
        phase: f64,
    },
}

impl SupplySpec {
    /// The nominal voltage of the supply.
    #[must_use]
    pub fn nominal(&self) -> f64 {
        match self {
            SupplySpec::Dc { volts } => *volts,
            SupplySpec::Sine { nominal, .. } => *nominal,
        }
    }
}

/// The characterization sweep configuration as data (mirror of
/// [`SweepConfig`](ivl_analog::characterize::SweepConfig)).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Pulse widths to apply (ps).
    pub widths: Vec<f64>,
    /// Quiet time before the first edge (ps).
    pub settle: f64,
    /// Simulation time after the last edge (ps).
    pub tail: f64,
    /// RK4 step (ps); only used with [`IntegratorSpec::Rk4`].
    pub dt: f64,
    /// Input slew (ps).
    pub slew: f64,
    /// Which inverter stage to measure, 0-based.
    pub stage: u32,
    /// The integrator.
    pub integrator: IntegratorSpec,
}

impl Default for SweepSpec {
    /// Mirrors `SweepConfig::default()`.
    fn default() -> Self {
        let cfg = ivl_analog::characterize::SweepConfig::default();
        SweepSpec {
            widths: cfg.widths,
            settle: cfg.settle,
            tail: cfg.tail,
            dt: cfg.dt,
            slew: cfg.slew,
            stage: u32::try_from(cfg.stage).unwrap_or(u32::MAX),
            integrator: IntegratorSpec::default(),
        }
    }
}

impl SweepSpec {
    /// Replaces the width list.
    #[must_use]
    pub fn with_widths(mut self, widths: impl IntoIterator<Item = f64>) -> Self {
        self.widths = widths.into_iter().collect();
        self
    }
}

/// The integrator selection as data.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum IntegratorSpec {
    /// Fixed-step RK4 at the sweep's `dt`.
    Rk4,
    /// Adaptive Dormand–Prince RK45 with the given tolerances.
    Rk45 {
        /// Relative tolerance.
        rtol: f64,
        /// Absolute tolerance.
        atol: f64,
    },
}

impl Default for IntegratorSpec {
    /// RK45 at the default tolerances.
    fn default() -> Self {
        let opts = ivl_analog::ode::Rk45Options::default();
        IntegratorSpec::Rk45 {
            rtol: opts.rtol,
            atol: opts.atol,
        }
    }
}

/// What an analog experiment computes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalogTask {
    /// `(T, δ)` samples of one stimulus orientation.
    Samples {
        /// Apply the inverted stimulus.
        inverted: bool,
    },
    /// Full characterization: `(δ↑, δ↓)` sample sets.
    Characterize,
    /// Deviations `D(T)` of the measured crossings against a reference
    /// delay model.
    Deviations {
        /// The reference model.
        reference: ReferenceSpec,
        /// Which stimulus orientations to measure.
        orientation: Orientation,
    },
}

/// The reference delay model of a deviation experiment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReferenceSpec {
    /// A closed-form exp-channel.
    Exp {
        /// RC time constant.
        tau: f64,
        /// Pure delay.
        t_p: f64,
        /// Switching threshold.
        v_th: f64,
    },
    /// A closed-form rational pair.
    Rational {
        /// Asymptote parameter.
        a: f64,
        /// Shift parameter.
        b: f64,
        /// Shape parameter.
        c: f64,
    },
    /// Characterize the *nominal* configuration (width scale 1, DC
    /// supply at the nominal voltage) first and use the empirical pair
    /// built from its samples — the paper's Figs. 8a–c procedure as a
    /// single self-contained spec. Each run re-measures the reference;
    /// when several deviation specs share one reference (e.g. the
    /// per-phase sweeps of Fig. 8a), characterize once and embed the
    /// samples via [`ReferenceSpec::Empirical`] instead.
    SelfEmpirical,
    /// An empirical pair built from previously measured `(T, δ)`
    /// samples (as returned by a `characterize` experiment) — the
    /// measured reference travels inside the spec, so one
    /// characterization can feed many deviation experiments.
    Empirical {
        /// Measured `(offset, delay)` samples of the rising output
        /// edge (`δ↑`).
        up: Vec<(f64, f64)>,
        /// Measured `(offset, delay)` samples of the falling output
        /// edge (`δ↓`).
        down: Vec<(f64, f64)>,
    },
}

impl ReferenceSpec {
    /// Builds an [`Empirical`](ReferenceSpec::Empirical) reference from
    /// characterization samples (the `(up, down)` sets of an
    /// [`AnalogTask::Characterize`] result).
    #[must_use]
    pub fn empirical(
        up: &[ivl_analog::characterize::DelaySample],
        down: &[ivl_analog::characterize::DelaySample],
    ) -> Self {
        ReferenceSpec::Empirical {
            up: up.iter().map(|s| (s.offset, s.delay)).collect(),
            down: down.iter().map(|s| (s.offset, s.delay)).collect(),
        }
    }
}

/// Which stimulus orientations a deviation experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Orientation {
    /// Both orientations, normal first (the Figs. 8/9 setting).
    Both,
    /// Only the normal stimulus.
    Normal,
    /// Only the inverted stimulus.
    Inverted,
}

/// An SPF experiment: the feedback delay pair, the adversary bounds and
/// a task.
#[derive(Debug, Clone, PartialEq)]
pub struct SpfSpec {
    /// The feedback channel's delay pair.
    pub delay: DelaySpec,
    /// Adversary bound `η⁻`.
    pub eta_minus: f64,
    /// Adversary bound `η⁺`.
    pub eta_plus: f64,
    /// What to compute.
    pub task: SpfTask,
}

impl SpfSpec {
    /// An SPF instance over an exp delay pair, computing the theory
    /// bundle.
    #[must_use]
    pub fn exp(tau: f64, t_p: f64, v_th: f64, eta_minus: f64, eta_plus: f64) -> Self {
        SpfSpec {
            delay: DelaySpec::Exp { tau, t_p, v_th },
            eta_minus,
            eta_plus,
            task: SpfTask::Theory,
        }
    }

    /// Replaces the task.
    #[must_use]
    pub fn with_task(mut self, task: SpfTask) -> Self {
        self.task = task;
        self
    }
}

/// A closed-form delay pair as data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DelaySpec {
    /// First-order RC switching delays.
    Exp {
        /// RC time constant.
        tau: f64,
        /// Pure delay.
        t_p: f64,
        /// Switching threshold.
        v_th: f64,
    },
    /// The algebraic involution family.
    Rational {
        /// Asymptote parameter.
        a: f64,
        /// Shift parameter.
        b: f64,
        /// Shape parameter.
        c: f64,
    },
}

/// What an SPF experiment computes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpfTask {
    /// The Section IV theory bundle only.
    Theory,
    /// Theory plus an event-driven run of the Fig. 5 circuit.
    Simulate {
        /// The adversary / noise source on the feedback channel.
        noise: NoiseSpec,
        /// The input signal.
        input: SignalSpec,
        /// Simulation horizon.
        horizon: f64,
    },
}

/// A noise source / adversary as data.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum NoiseSpec {
    /// Always `η = 0`.
    Zero,
    /// Rising maximally late, falling maximally early (shrinks pulses).
    WorstCase,
    /// The pulse-extending adversary.
    Extending,
    /// Uniform draws over the bounds.
    Uniform {
        /// RNG seed.
        seed: u64,
    },
    /// Truncated Gaussian draws.
    Gaussian {
        /// Standard deviation before truncation.
        sigma: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A constant shift.
    Constant {
        /// The shift applied to every transition.
        shift: f64,
    },
}

// ======================================================================
// Spec construction conveniences
// ======================================================================

impl ExperimentSpec {
    /// Wraps a workload.
    #[must_use]
    pub fn new(workload: WorkloadSpec) -> Self {
        ExperimentSpec { workload }
    }

    /// A channel-application experiment.
    #[must_use]
    pub fn channel(channel: ChannelSpec, input: SignalSpec) -> Self {
        ExperimentSpec::new(WorkloadSpec::Channel(ChannelRunSpec { channel, input }))
    }

    /// A digital sweep experiment.
    #[must_use]
    pub fn digital(spec: DigitalSpec) -> Self {
        ExperimentSpec::new(WorkloadSpec::Digital(spec))
    }

    /// An analog experiment.
    #[must_use]
    pub fn analog(spec: AnalogSpec) -> Self {
        ExperimentSpec::new(WorkloadSpec::Analog(spec))
    }

    /// An SPF experiment.
    #[must_use]
    pub fn spf(spec: SpfSpec) -> Self {
        ExperimentSpec::new(WorkloadSpec::Spf(spec))
    }

    /// A stable content hash of the spec's *canonical* text form.
    ///
    /// The hash is FNV-1a (64-bit) over the bytes of `self.to_string()`
    /// — the canonical `faithful/1` rendering, which is byte-identical
    /// for every text that parses to the same spec. Comments,
    /// whitespace and formatting variants of one spec therefore hash to
    /// the same value, which is exactly the contract the experiment
    /// service's content-addressed result cache keys on: because
    /// replay of a spec is bit-identical, equal hashes (verified
    /// against the stored canonical text to rule out collisions) mean
    /// reusable results.
    ///
    /// Unlike `std::collections::hash_map::DefaultHasher`, this value
    /// is stable across processes, platforms and releases of the spec
    /// schema version, so it can name on-disk cache entries.
    #[must_use]
    pub fn canonical_hash(&self) -> u64 {
        fnv1a_64(self.to_string().as_bytes())
    }
}

/// FNV-1a, 64-bit: the offset-basis/prime pair from Fowler–Noll–Vo.
/// Deliberately dependency-free and byte-order independent.
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ======================================================================
// Value conversion: spec -> tree
// ======================================================================

fn num(v: f64) -> Value {
    Value::num(v)
}

fn int(v: u64) -> Value {
    Value::int(v)
}

fn text(s: &str) -> Value {
    Value::str(s)
}

fn node(tag: &str, fields: Vec<(String, Value)>) -> Value {
    Value::node(tag, fields)
}

fn field(name: &str, value: Value) -> (String, Value) {
    (name.to_owned(), value)
}

impl ExperimentSpec {
    pub(crate) fn to_value(&self) -> Value {
        match &self.workload {
            WorkloadSpec::Channel(c) => node(
                "channel",
                vec![
                    field("channel", channel_to_value(&c.channel)),
                    field("input", signal_to_value(&c.input)),
                ],
            ),
            WorkloadSpec::Digital(d) => digital_to_value(d),
            WorkloadSpec::Analog(a) => analog_to_value(a),
            WorkloadSpec::Spf(s) => spf_to_value(s),
        }
    }
}

pub(crate) fn channel_to_value(c: &ChannelSpec) -> Value {
    let fields = c
        .params
        .entries()
        .iter()
        .map(|(name, value)| {
            let v = match value {
                ParamValue::Num(v) => num(*v),
                ParamValue::Int(v) => int(*v),
                ParamValue::Text(v) => {
                    if is_word(v) {
                        Value::word(v.clone())
                    } else {
                        Value::str(v.clone())
                    }
                }
                // future ParamValue variants degrade to their display form
                other => Value::str(other.to_string()),
            };
            (name.clone(), v)
        })
        .collect();
    Value::node(c.kind.clone(), fields)
}

fn is_word(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        && s != "true"
        && s != "false"
}

fn signal_to_value(s: &SignalSpec) -> Value {
    match s {
        SignalSpec::Zero => Value::word("zero"),
        SignalSpec::Pulse { at, width } => node(
            "pulse",
            vec![field("at", num(*at)), field("width", num(*width))],
        ),
        SignalSpec::Train { pulses } => node(
            "train",
            vec![field(
                "pulses",
                Value::list(
                    pulses
                        .iter()
                        .map(|(t, w)| Value::list(vec![num(*t), num(*w)]))
                        .collect(),
                ),
            )],
        ),
        SignalSpec::Times { initial, times } => node(
            "times",
            vec![
                field("initial", Value::bool(*initial)),
                field("at", Value::list(times.iter().map(|t| num(*t)).collect())),
            ],
        ),
    }
}

fn digital_to_value(d: &DigitalSpec) -> Value {
    let mut fields = vec![
        field("topology", topology_to_value(&d.topology)),
        field("horizon", num(d.horizon)),
    ];
    if let Some(m) = d.max_events {
        fields.push(field("max_events", int(m)));
    }
    if let Some(w) = d.workers {
        fields.push(field("workers", int(u64::from(w))));
    }
    match d.on_failure {
        FailurePolicySpec::Skip => {}
        FailurePolicySpec::Abort => fields.push(field("on_failure", Value::word("abort"))),
        FailurePolicySpec::Retry { attempts } => fields.push(field(
            "on_failure",
            node("retry", vec![field("attempts", int(u64::from(attempts)))]),
        )),
    }
    fields.push(field(
        "scenarios",
        Value::list(d.scenarios.iter().map(scenario_to_value).collect()),
    ));
    let mut output_fields = vec![
        field("signals", Value::bool(d.outputs.signals)),
        field("stats", Value::bool(d.outputs.stats)),
        field("vcd", Value::bool(d.outputs.vcd)),
    ];
    // emitted only when set, so specs predating the watch field
    // round-trip byte-identically (stable canonical hashes)
    if !d.outputs.watch.is_empty() {
        output_fields.push(field(
            "watch",
            Value::list(d.outputs.watch.iter().map(|n| text(n)).collect()),
        ));
    }
    fields.push(field("outputs", node("outputs", output_fields)));
    node("digital", fields)
}

fn topology_to_value(t: &TopologySpec) -> Value {
    match t {
        TopologySpec::Netlist(n) => node(
            "netlist",
            vec![
                field(
                    "nodes",
                    Value::list(n.nodes.iter().map(node_to_value).collect()),
                ),
                field(
                    "edges",
                    Value::list(n.edges.iter().map(edge_to_value).collect()),
                ),
            ],
        ),
        TopologySpec::InverterChain { stages, channel } => node(
            "chain",
            vec![
                field("stages", int(u64::from(*stages))),
                field("channel", channel_to_value(channel)),
            ],
        ),
        TopologySpec::Grid2d {
            width,
            height,
            channel,
        } => node(
            "grid",
            vec![
                field("width", int(u64::from(*width))),
                field("height", int(u64::from(*height))),
                field("channel", channel_to_value(channel)),
            ],
        ),
        TopologySpec::RandomDag {
            nodes,
            seed,
            channel,
        } => {
            let mut fields = vec![field("nodes", int(u64::from(*nodes)))];
            if let Some(seed) = seed {
                fields.push(field("seed", int(*seed)));
            }
            fields.push(field("channel", channel_to_value(channel)));
            node("random_dag", fields)
        }
        TopologySpec::FatTree { depth, channel } => node(
            "fat_tree",
            vec![
                field("depth", int(u64::from(*depth))),
                field("channel", channel_to_value(channel)),
            ],
        ),
    }
}

fn node_to_value(n: &NodeSpec) -> Value {
    match n {
        NodeSpec::Input { name } => node("input", vec![field("name", text(name))]),
        NodeSpec::Output { name } => node("output", vec![field("name", text(name))]),
        NodeSpec::Gate {
            name,
            kind,
            arity,
            init,
        } => {
            let mut fields = vec![
                field("name", text(name)),
                field("kind", gate_kind_to_value(kind)),
            ];
            if let Some(a) = arity {
                fields.push(field("arity", int(u64::from(*a))));
            }
            fields.push(field("init", Value::bool(*init)));
            node("gate", fields)
        }
    }
}

fn gate_kind_to_value(k: &GateKindSpec) -> Value {
    match k {
        GateKindSpec::Buf => Value::word("buf"),
        GateKindSpec::Not => Value::word("not"),
        GateKindSpec::And => Value::word("and"),
        GateKindSpec::Or => Value::word("or"),
        GateKindSpec::Nand => Value::word("nand"),
        GateKindSpec::Nor => Value::word("nor"),
        GateKindSpec::Xor => Value::word("xor"),
        GateKindSpec::Xnor => Value::word("xnor"),
        GateKindSpec::Table { inputs, rows } => node(
            "table",
            vec![
                field("inputs", int(u64::from(*inputs))),
                field(
                    "rows",
                    Value::list(rows.iter().map(|b| int(u64::from(*b))).collect()),
                ),
            ],
        ),
    }
}

fn edge_to_value(e: &EdgeSpec) -> Value {
    let mut fields = vec![
        field("from", text(&e.from)),
        field("to", text(&e.to)),
        field("pin", int(u64::from(e.pin))),
    ];
    if let Some(c) = &e.channel {
        fields.push(field("channel", channel_to_value(c)));
    }
    node("edge", fields)
}

fn scenario_to_value(s: &ScenarioSpec) -> Value {
    let mut fields = vec![field("label", text(&s.label))];
    if let Some(seed) = s.seed {
        fields.push(field("seed", int(seed)));
    }
    fields.push(field(
        "inputs",
        Value::list(
            s.inputs
                .iter()
                .map(|(port, sig)| {
                    node(
                        "drive",
                        vec![
                            field("port", text(port)),
                            field("signal", signal_to_value(sig)),
                        ],
                    )
                })
                .collect(),
        ),
    ));
    node("scenario", fields)
}

fn analog_to_value(a: &AnalogSpec) -> Value {
    let mut fields = vec![
        field(
            "chain",
            node(
                "chain",
                vec![
                    field("stages", int(u64::from(a.chain.stages))),
                    field("width_scale", num(a.chain.width_scale)),
                ],
            ),
        ),
        field(
            "supply",
            match &a.supply {
                SupplySpec::Dc { volts } => node("dc", vec![field("volts", num(*volts))]),
                SupplySpec::Sine {
                    nominal,
                    amplitude,
                    period,
                    phase,
                } => node(
                    "sine",
                    vec![
                        field("nominal", num(*nominal)),
                        field("amplitude", num(*amplitude)),
                        field("period", num(*period)),
                        field("phase", num(*phase)),
                    ],
                ),
            },
        ),
        field(
            "sweep",
            node(
                "sweep",
                vec![
                    field(
                        "widths",
                        Value::list(a.sweep.widths.iter().map(|w| num(*w)).collect()),
                    ),
                    field("settle", num(a.sweep.settle)),
                    field("tail", num(a.sweep.tail)),
                    field("dt", num(a.sweep.dt)),
                    field("slew", num(a.sweep.slew)),
                    field("stage", int(u64::from(a.sweep.stage))),
                    field(
                        "integrator",
                        match a.sweep.integrator {
                            IntegratorSpec::Rk4 => Value::word("rk4"),
                            IntegratorSpec::Rk45 { rtol, atol } => node(
                                "rk45",
                                vec![field("rtol", num(rtol)), field("atol", num(atol))],
                            ),
                        },
                    ),
                ],
            ),
        ),
        field(
            "task",
            match &a.task {
                AnalogTask::Samples { inverted } => {
                    node("samples", vec![field("inverted", Value::bool(*inverted))])
                }
                AnalogTask::Characterize => Value::word("characterize"),
                AnalogTask::Deviations {
                    reference,
                    orientation,
                } => node(
                    "deviations",
                    vec![
                        field("reference", reference_to_value(reference)),
                        field(
                            "orientation",
                            Value::word(match orientation {
                                Orientation::Both => "both",
                                Orientation::Normal => "normal",
                                Orientation::Inverted => "inverted",
                            }),
                        ),
                    ],
                ),
            },
        ),
    ];
    if let Some(w) = a.workers {
        fields.push(field("workers", int(u64::from(w))));
    }
    node("analog", fields)
}

fn reference_to_value(r: &ReferenceSpec) -> Value {
    match r {
        ReferenceSpec::Exp { tau, t_p, v_th } => delay_exp_to_value(*tau, *t_p, *v_th),
        ReferenceSpec::Rational { a, b, c } => delay_rational_to_value(*a, *b, *c),
        ReferenceSpec::SelfEmpirical => Value::word("self_empirical"),
        ReferenceSpec::Empirical { up, down } => node(
            "empirical",
            vec![
                field("up", samples_to_value(up)),
                field("down", samples_to_value(down)),
            ],
        ),
    }
}

fn samples_to_value(samples: &[(f64, f64)]) -> Value {
    Value::list(
        samples
            .iter()
            .map(|(t, d)| Value::list(vec![num(*t), num(*d)]))
            .collect(),
    )
}

fn delay_exp_to_value(tau: f64, t_p: f64, v_th: f64) -> Value {
    node(
        "exp",
        vec![
            field("tau", num(tau)),
            field("t_p", num(t_p)),
            field("v_th", num(v_th)),
        ],
    )
}

fn delay_rational_to_value(a: f64, b: f64, c: f64) -> Value {
    node(
        "rational",
        vec![field("a", num(a)), field("b", num(b)), field("c", num(c))],
    )
}

fn spf_to_value(s: &SpfSpec) -> Value {
    node(
        "spf",
        vec![
            field(
                "delay",
                match s.delay {
                    DelaySpec::Exp { tau, t_p, v_th } => delay_exp_to_value(tau, t_p, v_th),
                    DelaySpec::Rational { a, b, c } => delay_rational_to_value(a, b, c),
                },
            ),
            field("eta_minus", num(s.eta_minus)),
            field("eta_plus", num(s.eta_plus)),
            field(
                "task",
                match &s.task {
                    SpfTask::Theory => Value::word("theory"),
                    SpfTask::Simulate {
                        noise,
                        input,
                        horizon,
                    } => node(
                        "simulate",
                        vec![
                            field("noise", noise_to_value(*noise)),
                            field("input", signal_to_value(input)),
                            field("horizon", num(*horizon)),
                        ],
                    ),
                },
            ),
        ],
    )
}

fn noise_to_value(n: NoiseSpec) -> Value {
    match n {
        NoiseSpec::Zero => Value::word("zero"),
        NoiseSpec::WorstCase => Value::word("worst_case"),
        NoiseSpec::Extending => Value::word("extending"),
        NoiseSpec::Uniform { seed } => node("uniform", vec![field("seed", int(seed))]),
        NoiseSpec::Gaussian { sigma, seed } => node(
            "gaussian",
            vec![field("sigma", num(sigma)), field("seed", int(seed))],
        ),
        NoiseSpec::Constant { shift } => node("constant", vec![field("shift", num(shift))]),
    }
}

// ======================================================================
// Value conversion: tree -> spec
// ======================================================================

/// A consuming reader over one node's fields with contextual errors.
///
/// Carries the node's span so every error it raises points back into
/// the spec text when the value was parsed rather than built.
pub(crate) struct Fields {
    pub(crate) tag: String,
    pub(crate) span: Option<crate::error::Span>,
    fields: Vec<(String, Option<Value>)>,
}

impl Fields {
    pub(crate) fn of(value: Value, context: &str) -> Result<Fields, SpecError> {
        let span = value.span();
        match value.into_kind() {
            ValueKind::Node(tag, fields) => Ok(Fields {
                tag,
                span,
                fields: fields.into_iter().map(|(n, v)| (n, Some(v))).collect(),
            }),
            ValueKind::Word(tag) => Ok(Fields {
                tag,
                span,
                fields: Vec::new(),
            }),
            other => Err(SpecError::new(format!(
                "{context}: expected a tagged node, found {}",
                Value::from(other)
            ))
            .at(span)),
        }
    }

    pub(crate) fn expect_tag(&self, expected: &[&str]) -> Result<(), SpecError> {
        if expected.contains(&self.tag.as_str()) {
            Ok(())
        } else {
            Err(SpecError::new(format!(
                "unexpected tag {:?} (expected one of {expected:?})",
                self.tag
            ))
            .at(self.span))
        }
    }

    pub(crate) fn take(&mut self, name: &str) -> Option<Value> {
        self.fields
            .iter_mut()
            .find(|(n, v)| n == name && v.is_some())
            .and_then(|(_, v)| v.take())
    }

    pub(crate) fn req(&mut self, name: &str) -> Result<Value, SpecError> {
        let span = self.span;
        self.take(name)
            .ok_or_else(|| SpecError::new(format!("{}: missing field {name:?}", self.tag)).at(span))
    }

    pub(crate) fn f64(&mut self, name: &str) -> Result<f64, SpecError> {
        as_f64(&self.req(name)?, &self.tag, name)
    }

    pub(crate) fn u64(&mut self, name: &str) -> Result<u64, SpecError> {
        as_u64(&self.req(name)?, &self.tag, name)
    }

    pub(crate) fn u32(&mut self, name: &str) -> Result<u32, SpecError> {
        let v = self.req(name)?;
        let x = as_u64(&v, &self.tag, name)?;
        u32::try_from(x).map_err(|_| {
            SpecError::new(format!("{}: field {name:?} out of range", self.tag)).at(v.span())
        })
    }

    pub(crate) fn bool(&mut self, name: &str) -> Result<bool, SpecError> {
        as_bool(&self.req(name)?, &self.tag, name)
    }

    pub(crate) fn string(&mut self, name: &str) -> Result<String, SpecError> {
        as_text(&self.req(name)?, &self.tag, name)
    }

    pub(crate) fn list(&mut self, name: &str) -> Result<Vec<Value>, SpecError> {
        let v = self.req(name)?;
        let span = v.span();
        match v.into_kind() {
            ValueKind::List(items) => Ok(items),
            other => Err(SpecError::new(format!(
                "{}: field {name:?} must be a list, found {}",
                self.tag,
                Value::from(other)
            ))
            .at(span)),
        }
    }

    pub(crate) fn finish(self) -> Result<(), SpecError> {
        if let Some((name, v)) = self.fields.iter().find(|(_, v)| v.is_some()) {
            return Err(
                SpecError::new(format!("{}: unknown field {name:?}", self.tag))
                    .at(v.as_ref().and_then(Value::span).or(self.span)),
            );
        }
        Ok(())
    }
}

pub(crate) fn as_f64(v: &Value, tag: &str, name: &str) -> Result<f64, SpecError> {
    match v.kind() {
        ValueKind::Num(x) => Ok(*x),
        #[allow(clippy::cast_precision_loss)]
        ValueKind::Int(x) => Ok(*x as f64),
        _ => Err(
            SpecError::new(format!("{tag}: field {name:?} must be a number, found {v}"))
                .at(v.span()),
        ),
    }
}

pub(crate) fn as_u64(v: &Value, tag: &str, name: &str) -> Result<u64, SpecError> {
    match v.kind() {
        ValueKind::Int(x) => Ok(*x),
        _ => Err(SpecError::new(format!(
            "{tag}: field {name:?} must be an integer, found {v}"
        ))
        .at(v.span())),
    }
}

fn as_bool(v: &Value, tag: &str, name: &str) -> Result<bool, SpecError> {
    match v.kind() {
        ValueKind::Word(w) if w == "true" => Ok(true),
        ValueKind::Word(w) if w == "false" => Ok(false),
        _ => Err(SpecError::new(format!(
            "{tag}: field {name:?} must be true or false, found {v}"
        ))
        .at(v.span())),
    }
}

pub(crate) fn as_text(v: &Value, tag: &str, name: &str) -> Result<String, SpecError> {
    match v.kind() {
        ValueKind::Str(s) => Ok(s.clone()),
        ValueKind::Word(w) => Ok(w.clone()),
        _ => Err(
            SpecError::new(format!("{tag}: field {name:?} must be a string, found {v}"))
                .at(v.span()),
        ),
    }
}

impl ExperimentSpec {
    pub(crate) fn from_value(value: Value) -> Result<Self, SpecError> {
        let mut f = Fields::of(value, "workload")?;
        let workload = match f.tag.as_str() {
            "channel" => {
                let channel = channel_from_value(f.req("channel")?)?;
                let input = signal_from_value(f.req("input")?)?;
                WorkloadSpec::Channel(ChannelRunSpec { channel, input })
            }
            "digital" => WorkloadSpec::Digital(digital_from_fields(&mut f)?),
            "analog" => WorkloadSpec::Analog(analog_from_fields(&mut f)?),
            "spf" => WorkloadSpec::Spf(spf_from_fields(&mut f)?),
            other => {
                return Err(SpecError::new(format!(
                    "unknown workload kind {other:?} (expected channel, digital, analog or spf)"
                ))
                .at(f.span))
            }
        };
        f.finish()?;
        Ok(ExperimentSpec { workload })
    }
}

fn channel_from_value(value: Value) -> Result<ChannelSpec, SpecError> {
    let f = Fields::of(value, "channel")?;
    let mut params = ChannelParams::new();
    for (name, v) in &f.fields {
        let v = v.as_ref().expect("freshly constructed fields are present");
        params = match v.kind() {
            ValueKind::Num(x) => params.with_num(name.clone(), *x),
            ValueKind::Int(x) => params.with_int(name.clone(), *x),
            ValueKind::Word(w) => params.with_text(name.clone(), w.clone()),
            ValueKind::Str(s) => params.with_text(name.clone(), s.clone()),
            _ => {
                return Err(SpecError::new(format!(
                    "{}: channel parameter {name:?} must be scalar, found {v}",
                    f.tag
                ))
                .at(v.span()))
            }
        };
    }
    Ok(ChannelSpec {
        kind: f.tag,
        params,
    })
}

fn signal_from_value(value: Value) -> Result<SignalSpec, SpecError> {
    let mut f = Fields::of(value, "signal")?;
    let spec = match f.tag.as_str() {
        "zero" => SignalSpec::Zero,
        "pulse" => SignalSpec::Pulse {
            at: f.f64("at")?,
            width: f.f64("width")?,
        },
        "train" => {
            let mut pulses = Vec::new();
            for item in f.list("pulses")? {
                match item.kind() {
                    ValueKind::List(pair) if pair.len() == 2 => {
                        pulses.push((
                            as_f64(&pair[0], "train", "start")?,
                            as_f64(&pair[1], "train", "width")?,
                        ));
                    }
                    _ => {
                        return Err(SpecError::new(format!(
                            "train: each pulse must be a [start, width] pair, found {item}"
                        ))
                        .at(item.span()))
                    }
                }
            }
            SignalSpec::Train { pulses }
        }
        "times" => {
            let initial = f.bool("initial")?;
            let times = f
                .list("at")?
                .iter()
                .map(|v| as_f64(v, "times", "at"))
                .collect::<Result<Vec<_>, _>>()?;
            SignalSpec::Times { initial, times }
        }
        other => {
            return Err(SpecError::new(format!(
                "unknown signal kind {other:?} (expected zero, pulse, train or times)"
            ))
            .at(f.span))
        }
    };
    f.finish()?;
    Ok(spec)
}

fn digital_from_fields(f: &mut Fields) -> Result<DigitalSpec, SpecError> {
    let topology = topology_from_value(f.req("topology")?)?;
    let horizon = f.f64("horizon")?;
    let max_events = f
        .take("max_events")
        .map(|v| as_u64(&v, "digital", "max_events"))
        .transpose()?;
    let workers = take_workers(f)?;
    let on_failure = match f.take("on_failure") {
        None => FailurePolicySpec::default(),
        Some(v) => {
            let mut pf = Fields::of(v, "on_failure")?;
            let p = match pf.tag.as_str() {
                "abort" => FailurePolicySpec::Abort,
                "skip" => FailurePolicySpec::Skip,
                "retry" => FailurePolicySpec::Retry {
                    attempts: pf.u32("attempts")?,
                },
                other => {
                    return Err(SpecError::new(format!(
                        "unknown failure policy {other:?} (expected abort, skip or retry)"
                    ))
                    .at(pf.span))
                }
            };
            pf.finish()?;
            p
        }
    };
    let scenarios = f
        .list("scenarios")?
        .into_iter()
        .map(scenario_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let outputs = match f.take("outputs") {
        None => OutputSelect::default(),
        Some(v) => {
            let mut of = Fields::of(v, "outputs")?;
            of.expect_tag(&["outputs"])?;
            let signals = of.bool("signals")?;
            let stats = of.bool("stats")?;
            let vcd = of.bool("vcd")?;
            let watch = match of.take("watch") {
                None => Vec::new(),
                Some(v) => {
                    let span = v.span();
                    match v.into_kind() {
                        ValueKind::List(items) => items
                            .iter()
                            .map(|v| as_text(v, "outputs", "watch"))
                            .collect::<Result<Vec<_>, _>>()?,
                        other => {
                            return Err(SpecError::new(format!(
                                "outputs: field \"watch\" must be a list, found {}",
                                Value::from(other)
                            ))
                            .at(span))
                        }
                    }
                }
            };
            let sel = OutputSelect {
                signals,
                stats,
                vcd,
                watch,
            };
            of.finish()?;
            sel
        }
    };
    Ok(DigitalSpec {
        topology,
        horizon,
        max_events,
        workers,
        on_failure,
        scenarios,
        outputs,
    })
}

fn take_workers(f: &mut Fields) -> Result<Option<u32>, SpecError> {
    f.take("workers")
        .map(|v| {
            let w = as_u64(&v, &f.tag, "workers")?;
            u32::try_from(w).map_err(|_| {
                SpecError::new(format!("{}: field \"workers\" out of range", f.tag)).at(v.span())
            })
        })
        .transpose()
}

fn topology_from_value(value: Value) -> Result<TopologySpec, SpecError> {
    let mut f = Fields::of(value, "topology")?;
    let t = match f.tag.as_str() {
        "netlist" => {
            let nodes = f
                .list("nodes")?
                .into_iter()
                .map(node_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            let edges = f
                .list("edges")?
                .into_iter()
                .map(edge_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            TopologySpec::Netlist(NetlistSpec { nodes, edges })
        }
        "chain" => TopologySpec::InverterChain {
            stages: f.u32("stages")?,
            channel: channel_from_value(f.req("channel")?)?,
        },
        "grid" => TopologySpec::Grid2d {
            width: f.u32("width")?,
            height: f.u32("height")?,
            channel: channel_from_value(f.req("channel")?)?,
        },
        "random_dag" => TopologySpec::RandomDag {
            nodes: f.u32("nodes")?,
            seed: f
                .take("seed")
                .map(|v| as_u64(&v, "random_dag", "seed"))
                .transpose()?,
            channel: channel_from_value(f.req("channel")?)?,
        },
        "fat_tree" => TopologySpec::FatTree {
            depth: f.u32("depth")?,
            channel: channel_from_value(f.req("channel")?)?,
        },
        other => {
            return Err(SpecError::new(format!(
                "unknown topology kind {other:?} (expected netlist, chain, grid, random_dag or fat_tree)"
            ))
            .at(f.span))
        }
    };
    f.finish()?;
    Ok(t)
}

fn node_from_value(value: Value) -> Result<NodeSpec, SpecError> {
    let mut f = Fields::of(value, "node")?;
    let n = match f.tag.as_str() {
        "input" => NodeSpec::Input {
            name: f.string("name")?,
        },
        "output" => NodeSpec::Output {
            name: f.string("name")?,
        },
        "gate" => NodeSpec::Gate {
            name: f.string("name")?,
            kind: gate_kind_from_value(f.req("kind")?)?,
            arity: f
                .take("arity")
                .map(|v| {
                    let a = as_u64(&v, "gate", "arity")?;
                    u32::try_from(a)
                        .map_err(|_| SpecError::new("gate: field \"arity\" out of range"))
                })
                .transpose()?,
            init: f.bool("init")?,
        },
        other => {
            return Err(SpecError::new(format!(
                "unknown node kind {other:?} (expected input, output or gate)"
            ))
            .at(f.span))
        }
    };
    f.finish()?;
    Ok(n)
}

fn gate_kind_from_value(value: Value) -> Result<GateKindSpec, SpecError> {
    let mut f = Fields::of(value, "gate kind")?;
    let k = match f.tag.as_str() {
        "buf" => GateKindSpec::Buf,
        "not" => GateKindSpec::Not,
        "and" => GateKindSpec::And,
        "or" => GateKindSpec::Or,
        "nand" => GateKindSpec::Nand,
        "nor" => GateKindSpec::Nor,
        "xor" => GateKindSpec::Xor,
        "xnor" => GateKindSpec::Xnor,
        "table" => {
            let inputs = f.u32("inputs")?;
            let rows = f
                .list("rows")?
                .iter()
                .map(|v| Ok(as_u64(v, "table", "rows")? != 0))
                .collect::<Result<Vec<_>, SpecError>>()?;
            GateKindSpec::Table { inputs, rows }
        }
        other => return Err(SpecError::new(format!("unknown gate kind {other:?}")).at(f.span)),
    };
    f.finish()?;
    Ok(k)
}

fn edge_from_value(value: Value) -> Result<EdgeSpec, SpecError> {
    let mut f = Fields::of(value, "edge")?;
    f.expect_tag(&["edge"])?;
    let e = EdgeSpec {
        from: f.string("from")?,
        to: f.string("to")?,
        pin: f.u32("pin")?,
        channel: f.take("channel").map(channel_from_value).transpose()?,
    };
    f.finish()?;
    Ok(e)
}

fn scenario_from_value(value: Value) -> Result<ScenarioSpec, SpecError> {
    let mut f = Fields::of(value, "scenario")?;
    f.expect_tag(&["scenario"])?;
    let label = f.string("label")?;
    let seed = f
        .take("seed")
        .map(|v| as_u64(&v, "scenario", "seed"))
        .transpose()?;
    let mut inputs = Vec::new();
    for item in f.list("inputs")? {
        let mut df = Fields::of(item, "drive")?;
        df.expect_tag(&["drive"])?;
        let port = df.string("port")?;
        let signal = signal_from_value(df.req("signal")?)?;
        df.finish()?;
        inputs.push((port, signal));
    }
    f.finish()?;
    Ok(ScenarioSpec {
        label,
        seed,
        inputs,
    })
}

fn analog_from_fields(f: &mut Fields) -> Result<AnalogSpec, SpecError> {
    let mut cf = Fields::of(f.req("chain")?, "chain")?;
    cf.expect_tag(&["chain"])?;
    let chain = ChainSpec {
        stages: cf.u32("stages")?,
        width_scale: cf.f64("width_scale")?,
    };
    cf.finish()?;

    let mut sf = Fields::of(f.req("supply")?, "supply")?;
    let supply = match sf.tag.as_str() {
        "dc" => SupplySpec::Dc {
            volts: sf.f64("volts")?,
        },
        "sine" => SupplySpec::Sine {
            nominal: sf.f64("nominal")?,
            amplitude: sf.f64("amplitude")?,
            period: sf.f64("period")?,
            phase: sf.f64("phase")?,
        },
        other => {
            return Err(SpecError::new(format!(
                "unknown supply kind {other:?} (expected dc or sine)"
            ))
            .at(sf.span))
        }
    };
    sf.finish()?;

    let mut wf = Fields::of(f.req("sweep")?, "sweep")?;
    wf.expect_tag(&["sweep"])?;
    let widths = wf
        .list("widths")?
        .iter()
        .map(|v| as_f64(v, "sweep", "widths"))
        .collect::<Result<Vec<_>, _>>()?;
    let mut sweep = SweepSpec {
        widths,
        settle: wf.f64("settle")?,
        tail: wf.f64("tail")?,
        dt: wf.f64("dt")?,
        slew: wf.f64("slew")?,
        stage: wf.u32("stage")?,
        integrator: IntegratorSpec::default(),
    };
    let mut intf = Fields::of(wf.req("integrator")?, "integrator")?;
    sweep.integrator = match intf.tag.as_str() {
        "rk4" => IntegratorSpec::Rk4,
        "rk45" => IntegratorSpec::Rk45 {
            rtol: intf.f64("rtol")?,
            atol: intf.f64("atol")?,
        },
        other => {
            return Err(SpecError::new(format!(
                "unknown integrator {other:?} (expected rk4 or rk45)"
            ))
            .at(intf.span))
        }
    };
    intf.finish()?;
    wf.finish()?;

    let mut tf = Fields::of(f.req("task")?, "task")?;
    let task = match tf.tag.as_str() {
        "samples" => AnalogTask::Samples {
            inverted: tf.bool("inverted")?,
        },
        "characterize" => AnalogTask::Characterize,
        "deviations" => {
            let reference = reference_from_value(tf.req("reference")?)?;
            let orientation = match tf.string("orientation")?.as_str() {
                "both" => Orientation::Both,
                "normal" => Orientation::Normal,
                "inverted" => Orientation::Inverted,
                other => {
                    return Err(SpecError::new(format!(
                        "unknown orientation {other:?} (expected both, normal or inverted)"
                    ))
                    .at(tf.span))
                }
            };
            AnalogTask::Deviations {
                reference,
                orientation,
            }
        }
        other => {
            return Err(SpecError::new(format!(
                "unknown analog task {other:?} (expected samples, characterize or deviations)"
            ))
            .at(tf.span))
        }
    };
    tf.finish()?;

    let workers = take_workers(f)?;
    Ok(AnalogSpec {
        chain,
        supply,
        sweep,
        task,
        workers,
    })
}

fn reference_from_value(value: Value) -> Result<ReferenceSpec, SpecError> {
    let mut f = Fields::of(value, "reference")?;
    let r = match f.tag.as_str() {
        "exp" => ReferenceSpec::Exp {
            tau: f.f64("tau")?,
            t_p: f.f64("t_p")?,
            v_th: f.f64("v_th")?,
        },
        "rational" => ReferenceSpec::Rational {
            a: f.f64("a")?,
            b: f.f64("b")?,
            c: f.f64("c")?,
        },
        "self_empirical" => ReferenceSpec::SelfEmpirical,
        "empirical" => ReferenceSpec::Empirical {
            up: samples_from_value(f.req("up")?)?,
            down: samples_from_value(f.req("down")?)?,
        },
        other => {
            return Err(SpecError::new(format!(
                "unknown reference {other:?} (expected exp, rational, empirical or self_empirical)"
            ))
            .at(f.span))
        }
    };
    f.finish()?;
    Ok(r)
}

fn samples_from_value(value: Value) -> Result<Vec<(f64, f64)>, SpecError> {
    let span = value.span();
    let ValueKind::List(items) = value.into_kind() else {
        return Err(SpecError::new("empirical: samples must be a list").at(span));
    };
    items
        .into_iter()
        .map(|item| match item.kind() {
            ValueKind::List(pair) if pair.len() == 2 => Ok((
                as_f64(&pair[0], "empirical", "offset")?,
                as_f64(&pair[1], "empirical", "delay")?,
            )),
            _ => Err(SpecError::new(format!(
                "empirical: each sample must be an [offset, delay] pair, found {item}"
            ))
            .at(item.span())),
        })
        .collect()
}

fn spf_from_fields(f: &mut Fields) -> Result<SpfSpec, SpecError> {
    let mut df = Fields::of(f.req("delay")?, "delay")?;
    let delay = match df.tag.as_str() {
        "exp" => DelaySpec::Exp {
            tau: df.f64("tau")?,
            t_p: df.f64("t_p")?,
            v_th: df.f64("v_th")?,
        },
        "rational" => DelaySpec::Rational {
            a: df.f64("a")?,
            b: df.f64("b")?,
            c: df.f64("c")?,
        },
        other => {
            return Err(SpecError::new(format!(
                "unknown delay family {other:?} (expected exp or rational)"
            ))
            .at(df.span))
        }
    };
    df.finish()?;
    let eta_minus = f.f64("eta_minus")?;
    let eta_plus = f.f64("eta_plus")?;
    let mut tf = Fields::of(f.req("task")?, "task")?;
    let task = match tf.tag.as_str() {
        "theory" => SpfTask::Theory,
        "simulate" => SpfTask::Simulate {
            noise: noise_from_value(tf.req("noise")?)?,
            input: signal_from_value(tf.req("input")?)?,
            horizon: tf.f64("horizon")?,
        },
        other => {
            return Err(SpecError::new(format!(
                "unknown spf task {other:?} (expected theory or simulate)"
            ))
            .at(tf.span))
        }
    };
    tf.finish()?;
    Ok(SpfSpec {
        delay,
        eta_minus,
        eta_plus,
        task,
    })
}

fn noise_from_value(value: Value) -> Result<NoiseSpec, SpecError> {
    let mut f = Fields::of(value, "noise")?;
    let n = match f.tag.as_str() {
        "zero" => NoiseSpec::Zero,
        "worst_case" => NoiseSpec::WorstCase,
        "extending" => NoiseSpec::Extending,
        "uniform" => NoiseSpec::Uniform {
            seed: f.u64("seed")?,
        },
        "gaussian" => NoiseSpec::Gaussian {
            sigma: f.f64("sigma")?,
            seed: f.u64("seed")?,
        },
        "constant" => NoiseSpec::Constant {
            shift: f.f64("shift")?,
        },
        other => return Err(SpecError::new(format!("unknown noise kind {other:?}")).at(f.span)),
    };
    f.finish()?;
    Ok(n)
}

// ======================================================================
// Display / FromStr
// ======================================================================

impl fmt::Display for ExperimentSpec {
    /// The versioned text serialization. Round-trips exactly through
    /// [`FromStr`] for every spec whose numbers are finite and whose
    /// channel kinds/parameter names are identifiers.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render_document(&self.to_value()))
    }
}

impl FromStr for ExperimentSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExperimentSpec::from_value(parse_document(s)?)
    }
}
