//! Resumable sweep checkpoints: the versioned sidecar behind
//! [`Experiment::resume`](crate::Experiment::resume).
//!
//! While a checkpointed digital sweep runs, the facade periodically
//! writes a `faithful/1` **checkpoint document** next to the results:
//! the full experiment spec (embedded verbatim, so the sidecar is
//! self-contained), the total scenario count, and — for every scenario
//! that has already completed successfully — its output-port signals
//! and event counts. Failed scenarios are deliberately *not*
//! checkpointed: a resumed run re-executes them, so transient failures
//! get a second chance and deterministic ones re-surface.
//!
//! Resuming parses the sidecar, rebuilds the experiment from the
//! embedded spec, skips every checkpointed scenario, and merges the
//! persisted signals back into the final result and statistics. For
//! seeded scenarios the merged result is bit-identical to an
//! uninterrupted run: signals round-trip exactly (`f64` times print via
//! `{:?}`), and statistics are re-aggregated in scenario-index order
//! from the same per-scenario data the runner would have produced.
//!
//! Writes are atomic (write-to-temp, then rename), so a kill mid-write
//! leaves the previous complete checkpoint in place.

use std::collections::BTreeMap;
use std::path::Path;

use ivl_core::{Bit, Signal};

use crate::error::{CheckpointError, SpecError};
use crate::spec::{as_f64, Fields};
use crate::value::{parse_document, render_document, Value};

/// Version tag of the checkpoint sidecar schema (inside the `faithful/1`
/// document version).
pub(crate) const CHECKPOINT_VERSION: u64 = 1;

/// One successfully completed scenario, as persisted.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DoneScenario {
    pub(crate) label: String,
    pub(crate) processed: u64,
    pub(crate) scheduled: u64,
    pub(crate) signals: Vec<(String, Signal)>,
}

/// The persisted state of a partially completed sweep.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointState {
    /// The experiment spec, embedded verbatim.
    pub(crate) spec_text: String,
    /// Total scenario count of the sweep.
    pub(crate) total: usize,
    /// Retries spent across the completed portion.
    pub(crate) retried: u64,
    /// Completed scenarios by sweep index.
    pub(crate) done: BTreeMap<usize, DoneScenario>,
}

fn field(name: &str, value: Value) -> (String, Value) {
    (name.to_owned(), value)
}

fn signal_to_value(name: &str, signal: &Signal) -> Value {
    Value::node(
        "sig",
        vec![
            field("name", Value::str(name)),
            field("initial", Value::bool(signal.initial() == Bit::One)),
            field(
                "times",
                Value::list(
                    signal
                        .transitions()
                        .iter()
                        .map(|t| Value::num(t.time))
                        .collect(),
                ),
            ),
        ],
    )
}

/// Renders the checkpoint as a versioned `faithful/1` document.
pub(crate) fn render(state: &CheckpointState) -> String {
    let done = state
        .done
        .iter()
        .map(|(index, d)| {
            Value::node(
                "done",
                vec![
                    field("index", Value::int(*index as u64)),
                    field("label", Value::str(d.label.clone())),
                    field("processed", Value::int(d.processed)),
                    field("scheduled", Value::int(d.scheduled)),
                    field(
                        "signals",
                        Value::list(
                            d.signals
                                .iter()
                                .map(|(n, s)| signal_to_value(n, s))
                                .collect(),
                        ),
                    ),
                ],
            )
        })
        .collect();
    let root = Value::node(
        "checkpoint",
        vec![
            field("version", Value::int(CHECKPOINT_VERSION)),
            field("total", Value::int(state.total as u64)),
            field("retried", Value::int(state.retried)),
            field("spec", Value::str(state.spec_text.clone())),
            field("done", Value::list(done)),
        ],
    );
    render_document(&root)
}

fn from_spec_err(e: SpecError) -> CheckpointError {
    CheckpointError::new(e.to_string())
}

/// Parses a checkpoint document.
pub(crate) fn parse(text: &str) -> Result<CheckpointState, CheckpointError> {
    let value = parse_document(text).map_err(from_spec_err)?;
    let mut f = Fields::of(value, "checkpoint").map_err(from_spec_err)?;
    f.expect_tag(&["checkpoint"]).map_err(from_spec_err)?;
    let version = f.u64("version").map_err(from_spec_err)?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::new(format!(
            "unsupported checkpoint version {version} (this build reads version \
             {CHECKPOINT_VERSION})"
        )));
    }
    let total = usize::try_from(f.u64("total").map_err(from_spec_err)?)
        .map_err(|_| CheckpointError::new("field \"total\" out of range"))?;
    let retried = f.u64("retried").map_err(from_spec_err)?;
    let spec_text = f.string("spec").map_err(from_spec_err)?;
    let mut done = BTreeMap::new();
    for item in f.list("done").map_err(from_spec_err)? {
        let mut df = Fields::of(item, "done").map_err(from_spec_err)?;
        df.expect_tag(&["done"]).map_err(from_spec_err)?;
        let index = usize::try_from(df.u64("index").map_err(from_spec_err)?)
            .map_err(|_| CheckpointError::new("scenario index out of range"))?;
        if index >= total {
            return Err(CheckpointError::new(format!(
                "completed scenario index {index} exceeds the sweep's total of {total}"
            )));
        }
        let label = df.string("label").map_err(from_spec_err)?;
        let processed = df.u64("processed").map_err(from_spec_err)?;
        let scheduled = df.u64("scheduled").map_err(from_spec_err)?;
        let mut signals = Vec::new();
        for sv in df.list("signals").map_err(from_spec_err)? {
            let mut sf = Fields::of(sv, "sig").map_err(from_spec_err)?;
            sf.expect_tag(&["sig"]).map_err(from_spec_err)?;
            let name = sf.string("name").map_err(from_spec_err)?;
            let initial = if sf.bool("initial").map_err(from_spec_err)? {
                Bit::One
            } else {
                Bit::Zero
            };
            let times = sf
                .list("times")
                .map_err(from_spec_err)?
                .iter()
                .map(|v| as_f64(v, "sig", "times"))
                .collect::<Result<Vec<f64>, _>>()
                .map_err(from_spec_err)?;
            sf.finish().map_err(from_spec_err)?;
            let signal = Signal::from_times(initial, &times).map_err(|e| {
                CheckpointError::new(format!("invalid persisted signal {name:?}: {e}"))
            })?;
            signals.push((name, signal));
        }
        df.finish().map_err(from_spec_err)?;
        let duplicate = done
            .insert(
                index,
                DoneScenario {
                    label,
                    processed,
                    scheduled,
                    signals,
                },
            )
            .is_some();
        if duplicate {
            return Err(CheckpointError::new(format!(
                "scenario index {index} is checkpointed twice"
            )));
        }
    }
    f.finish().map_err(from_spec_err)?;
    Ok(CheckpointState {
        spec_text,
        total,
        retried,
        done,
    })
}

/// Reads and parses a checkpoint sidecar.
pub(crate) fn read(path: &Path) -> Result<CheckpointState, CheckpointError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CheckpointError::new(e.to_string()).at_path(path.display().to_string()))?;
    parse(&text).map_err(|e| e.at_path(path.display().to_string()))
}

/// Writes a checkpoint atomically: render to `<path>.tmp`, then rename
/// over `path`, so an interrupted write never truncates the previous
/// complete checkpoint. Shares [`crate::atomicio::write_atomic`] with
/// the experiment service's disk cache so both stores keep the same
/// crash discipline.
pub(crate) fn write_atomic(path: &Path, state: &CheckpointState) -> Result<(), CheckpointError> {
    let text = render(state);
    crate::atomicio::write_atomic(path, text.as_bytes())
        .map_err(|(e, at)| CheckpointError::new(e.to_string()).at_path(at.display().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CheckpointState {
        let mut done = BTreeMap::new();
        done.insert(
            2,
            DoneScenario {
                label: "s2".to_owned(),
                processed: 11,
                scheduled: 13,
                signals: vec![(
                    "y".to_owned(),
                    Signal::from_times(Bit::One, &[1.25, 3.0000000000000004]).unwrap(),
                )],
            },
        );
        done.insert(
            0,
            DoneScenario {
                label: "s0".to_owned(),
                processed: 7,
                scheduled: 7,
                signals: vec![("y".to_owned(), Signal::zero())],
            },
        );
        CheckpointState {
            spec_text: "faithful/1 channel {\n}\n".to_owned(),
            total: 5,
            retried: 3,
            done,
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let state = sample_state();
        let text = render(&state);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, state);
        // and the rendering is stable
        assert_eq!(render(&parsed), text);
    }

    #[test]
    fn bad_documents_are_rejected_with_reasons() {
        assert!(parse("garbage").is_err());
        // wrong version
        let text = render(&sample_state()).replace("version = 1", "version = 99");
        let err = parse(&text).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        // completed index out of range
        let text = render(&sample_state()).replace("total = 5", "total = 1");
        let err = parse(&text).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn atomic_write_and_read_round_trip() {
        let state = sample_state();
        let path =
            std::env::temp_dir().join(format!("faithful_ckpt_test_{}.spec", std::process::id()));
        write_atomic(&path, &state).unwrap();
        let read_back = read(&path).unwrap();
        assert_eq!(read_back, state);
        std::fs::remove_file(&path).ok();
        let err = read(&path).unwrap_err();
        assert!(err.path().is_some());
    }
}
