//! The content-addressed result cache: exact, bounded, optionally
//! persistent.
//!
//! Keys are [`ExperimentSpec::canonical_hash`](crate::ExperimentSpec::canonical_hash)
//! values; every entry also stores the canonical spec text it was
//! computed for and a lookup verifies it, so a (vanishingly unlikely)
//! 64-bit collision degrades to a miss, never to a wrong result.
//!
//! The in-memory store is an LRU bounded by **entry count and total
//! bytes** — whichever cap is hit first evicts the least-recently-used
//! entries. The optional disk store (one document per entry under the
//! configured directory) is written through on insert with the same
//! atomic tmp+rename discipline as checkpoint sidecars
//! ([`crate::atomicio`]), so a daemon killed mid-write leaves either
//! the previous complete entry or none — a truncated or torn entry
//! fails to parse and reads as a miss, never as corrupt data.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::spec::Fields;
use crate::value::{parse_document, render_document, Value};

/// Schema version of on-disk cache entries.
const DISK_VERSION: u64 = 1;

struct Entry {
    spec: String,
    result: String,
    stamp: u64,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.spec.len() + self.result.len()
    }
}

/// Running counters of one cache's lifetime, for the daemon's drain
/// summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing (or a hash collision).
    pub misses: u64,
    /// Entries evicted to respect the entry/byte bounds.
    pub evictions: u64,
    /// Disk writes that failed (the cache degrades to memory-only for
    /// that entry; never fatal).
    pub disk_errors: u64,
}

/// A bounded LRU of rendered result documents keyed on canonical spec
/// text, with optional write-through persistence.
pub struct ResultCache {
    entries: HashMap<u64, Entry>,
    clock: u64,
    total_bytes: usize,
    max_entries: usize,
    max_bytes: usize,
    dir: Option<PathBuf>,
    counters: CacheCounters,
}

impl ResultCache {
    /// A memory-only cache holding at most `max_entries` entries and
    /// `max_bytes` total bytes (specs + results). Either bound of 0
    /// disables caching entirely.
    #[must_use]
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            clock: 0,
            total_bytes: 0,
            max_entries,
            max_bytes,
            dir: None,
            counters: CacheCounters::default(),
        }
    }

    /// Adds a write-through disk store under `dir` (created if
    /// missing). Disk entries are unbounded and survive restarts; the
    /// LRU bounds apply to memory only.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn with_disk(mut self, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.dir = Some(dir);
        Ok(self)
    }

    /// Lifetime counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// The file a given hash persists to, when a disk store is
    /// configured.
    #[must_use]
    pub fn entry_path(&self, hash: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| entry_path(d, hash))
    }

    /// Looks up the result for `canonical_spec` (which must hash to
    /// `hash`): memory first, then disk (promoting a disk hit into
    /// memory). The stored spec text is compared before anything is
    /// returned, so a colliding hash is a miss.
    pub fn get(&mut self, hash: u64, canonical_spec: &str) -> Option<String> {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&hash) {
            if e.spec == canonical_spec {
                e.stamp = self.clock;
                self.counters.hits += 1;
                return Some(e.result.clone());
            }
            self.counters.misses += 1;
            return None;
        }
        if let Some(dir) = &self.dir {
            if let Some(result) = read_entry(&entry_path(dir, hash), canonical_spec) {
                self.counters.hits += 1;
                self.install(hash, canonical_spec.to_owned(), result.clone(), false);
                return Some(result);
            }
        }
        self.counters.misses += 1;
        None
    }

    /// Stores the rendered result for `canonical_spec`, evicting
    /// least-recently-used entries past the bounds and writing through
    /// to disk when configured.
    pub fn insert(&mut self, hash: u64, canonical_spec: &str, result: String) {
        if self.max_entries == 0 || self.max_bytes == 0 {
            return;
        }
        self.clock += 1;
        self.install(hash, canonical_spec.to_owned(), result, true);
    }

    fn install(&mut self, hash: u64, spec: String, result: String, write_disk: bool) {
        if write_disk {
            if let Some(dir) = &self.dir {
                let text = render_entry(&spec, &result);
                if crate::atomicio::write_atomic(&entry_path(dir, hash), text.as_bytes()).is_err() {
                    self.counters.disk_errors += 1;
                }
            }
        }
        if let Some(old) = self.entries.remove(&hash) {
            self.total_bytes -= old.bytes();
        }
        let entry = Entry {
            spec,
            result,
            stamp: self.clock,
        };
        self.total_bytes += entry.bytes();
        self.entries.insert(hash, entry);
        // Evict past either bound, never the entry just touched (a
        // single oversized result may transiently exceed max_bytes
        // rather than thrash).
        while self.entries.len() > 1
            && (self.entries.len() > self.max_entries || self.total_bytes > self.max_bytes)
        {
            let Some((&lru, _)) = self
                .entries
                .iter()
                .filter(|(k, _)| **k != hash)
                .min_by_key(|(_, e)| e.stamp)
            else {
                break;
            };
            let removed = self.entries.remove(&lru).expect("lru key just found");
            self.total_bytes -= removed.bytes();
            self.counters.evictions += 1;
        }
    }

    /// Number of entries currently in memory.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes (specs + results) currently held in memory.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.total_bytes
    }
}

fn entry_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("cache_{hash:016x}.spec"))
}

fn render_entry(spec: &str, result: &str) -> String {
    render_document(&Value::node(
        "cached",
        vec![
            ("version".to_owned(), Value::int(DISK_VERSION)),
            ("spec".to_owned(), Value::str(spec)),
            ("result".to_owned(), Value::str(result)),
        ],
    ))
}

/// Reads and validates one disk entry; any parse failure, version
/// mismatch or spec mismatch is a miss (`None`), never an error — torn
/// or foreign files must not take the service down.
fn read_entry(path: &Path, canonical_spec: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut f = Fields::of(parse_document(&text).ok()?, "cached").ok()?;
    f.expect_tag(&["cached"]).ok()?;
    if f.u64("version").ok()? != DISK_VERSION {
        return None;
    }
    let spec = f.string("spec").ok()?;
    let result = f.string("result").ok()?;
    f.finish().ok()?;
    (spec == canonical_spec).then_some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("faithful_cache_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn lru_is_bounded_by_entries_and_bytes() {
        let mut c = ResultCache::new(2, 1 << 20);
        c.insert(1, "spec-a", "result-a".to_owned());
        c.insert(2, "spec-b", "result-b".to_owned());
        c.insert(3, "spec-c", "result-c".to_owned());
        assert_eq!(c.len(), 2);
        // 1 was least recently used and fell out
        assert!(c.get(1, "spec-a").is_none());
        assert_eq!(c.get(3, "spec-c").as_deref(), Some("result-c"));
        // touching 2 makes 3 the LRU for the next eviction
        assert!(c.get(2, "spec-b").is_some());
        c.insert(4, "spec-d", "result-d".to_owned());
        assert!(c.get(3, "spec-c").is_none());
        assert!(c.get(2, "spec-b").is_some());

        // byte bound: each entry is ~16 bytes, cap at ~2 entries' worth
        let mut c = ResultCache::new(100, 36);
        c.insert(1, "spec-a", "result-a".to_owned());
        c.insert(2, "spec-b", "result-b".to_owned());
        c.insert(3, "spec-c", "result-c".to_owned());
        assert!(c.bytes() <= 36, "bytes = {}", c.bytes());
        assert!(c.len() < 3);
        assert!(c.counters().evictions >= 1);
    }

    #[test]
    fn hash_collisions_read_as_misses() {
        let mut c = ResultCache::new(10, 1 << 20);
        c.insert(42, "spec-a", "result-a".to_owned());
        assert!(c.get(42, "different-spec-same-hash").is_none());
        assert_eq!(c.get(42, "spec-a").as_deref(), Some("result-a"));
    }

    #[test]
    fn disk_store_survives_a_new_cache_and_tolerates_torn_files() {
        let d = dir("disk");
        let mut c = ResultCache::new(10, 1 << 20).with_disk(&d).unwrap();
        c.insert(7, "faithful/1 spec", "faithful/1 result".to_owned());
        let path = c.entry_path(7).unwrap();
        assert!(path.exists());

        // a fresh (post-restart) cache reads it back from disk
        let mut fresh = ResultCache::new(10, 1 << 20).with_disk(&d).unwrap();
        assert_eq!(
            fresh.get(7, "faithful/1 spec").as_deref(),
            Some("faithful/1 result")
        );
        // ... and promoted it into memory
        assert_eq!(fresh.len(), 1);

        // kill-mid-write: truncate the entry as an interrupted write
        // would never do (the atomic rename forbids it) and as a torn
        // disk could: the entry reads as a miss, not an error.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let mut torn = ResultCache::new(10, 1 << 20).with_disk(&d).unwrap();
        assert!(torn.get(7, "faithful/1 spec").is_none());

        // a leftover .tmp from a kill between write and rename is
        // ignored by reads and replaced by the next write
        std::fs::write(path.with_extension("spec.tmp"), "half a docum").unwrap();
        torn.insert(7, "faithful/1 spec", "faithful/1 result".to_owned());
        assert!(!path.with_extension("spec.tmp").exists());
        let mut again = ResultCache::new(10, 1 << 20).with_disk(&d).unwrap();
        assert_eq!(
            again.get(7, "faithful/1 spec").as_deref(),
            Some("faithful/1 result")
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn zero_bounds_disable_caching() {
        let mut c = ResultCache::new(0, 1 << 20);
        c.insert(1, "s", "r".to_owned());
        assert!(c.get(1, "s").is_none());
        assert!(c.is_empty());
    }
}
