//! The experiment service: `faithful/1` specs served over TCP with
//! content-addressed result caching.
//!
//! Every workload in this crate is a canonical, bit-identical-replayable
//! text spec ([`ExperimentSpec`](crate::ExperimentSpec)), so the
//! simulator core can be run as a long-lived backend where *specs are
//! the API*: a daemon ([`Server`], shipped as the `faithful-serve` bin)
//! accepts length-prefixed spec documents over a versioned frame
//! protocol, runs the [lint](mod@crate::lint) preflight, schedules accepted
//! specs onto one shared bounded worker pool, and streams typed results
//! (or typed spec/lint/run errors) back — pipelined, out of order, many
//! requests per connection.
//!
//! ## Exact result caching
//!
//! Because replay of a spec is bit-identical, a result cache keyed on
//! the *canonical printed spec text* is exact, not approximate: results
//! are cached content-addressed under
//! [`ExperimentSpec::canonical_hash`](crate::ExperimentSpec::canonical_hash)
//! (a stable FNV-1a over the `Display` form), so comment, whitespace
//! and formatting variants of the same spec hit the same entry and a
//! hot resubmission is a pure byte replay. The in-memory store is an
//! LRU bounded by entry count *and* bytes ([`ResultCache`]); an
//! optional on-disk store under `IVL_CACHE_DIR` persists entries across
//! daemon restarts using the same atomic tmp+rename discipline as
//! checkpoint sidecars. The only workloads never cached are digital
//! sweeps with *unseeded* scenarios over stochastic channels — the one
//! case where replay is allowed to differ.
//!
//! ## Frame protocol (`faithful-serve/1`)
//!
//! Every frame is `[type: u8][request id: u64 BE][length: u32 BE]`
//! followed by `length` bytes of UTF-8 payload:
//!
//! | type | name | direction | payload |
//! |------|------|-----------|---------|
//! | 1 | `HELLO` | server → client | the greeting `faithful-serve/1` |
//! | 2 | `SUBMIT` | client → server | a `faithful/1` spec document |
//! | 3 | `RESULT` | server → client | a `faithful/1 result { … }` document (computed) |
//! | 4 | `RESULT_CACHED` | server → client | same document, served from the cache |
//! | 5 | `ERROR` | server → client | a `faithful/1 error { … }` document |
//!
//! Request ids are chosen by the client and echoed back verbatim;
//! responses may arrive in any order. `RESULT` and `RESULT_CACHED`
//! carry byte-identical payloads for the same spec — only the frame
//! type reveals the cache.
//!
//! ## Shutdown
//!
//! On SIGTERM (or [`ServiceHandle::shutdown`]) the daemon stops
//! accepting connections, rejects *new* submissions with a typed
//! `shutdown` error, drains every already-accepted job, flushes the
//! replies, and only then exits: no accepted job is ever lost.
//!
//! ```no_run
//! use faithful::service::{ServeConfig, Server, ServiceClient};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind(ServeConfig::default())?;
//! let addr = server.local_addr()?;
//! let handle = server.handle();
//! let join = std::thread::spawn(move || server.run());
//! let mut client = ServiceClient::connect(addr)?;
//! let response = client.run_one("faithful/1 channel { channel = pure { delay = 1.0 }; input = pulse { at = 0.0; width = 2.0 } }")?;
//! assert!(response.reply.is_ok());
//! handle.shutdown();
//! join.join().unwrap();
//! # Ok(())
//! # }
//! ```

mod cache;
mod client;
mod protocol;
mod server;
mod wire;

pub use cache::{CacheCounters, ResultCache};
pub use client::{run_batch, BatchOptions, BatchReport, Response, ServiceClient};
pub use protocol::GREETING;
pub use server::{ServeConfig, ServeSummary, Server, ServiceHandle};
pub use wire::{
    parse_error, parse_result, render_result, ServedDiagnostic, ServedError, ServedErrorKind,
    ServedOutcome, ServedResult, ServedRun, ServedTheory,
};

/// Environment knob naming the daemon's listen address
/// (`host:port`), read by the `faithful-serve` and `faithful-client`
/// bins when `--addr` is not given.
pub const ENV_ADDR: &str = "IVL_SERVE_ADDR";

/// Environment knob naming the on-disk result cache directory, read by
/// the `faithful-serve` bin when `--cache-dir` is not given. Unset
/// means the cache is memory-only.
pub const ENV_CACHE_DIR: &str = "IVL_CACHE_DIR";
