//! The daemon: accept loop, per-connection reader/writer threads, the
//! shared bounded job pool, and graceful drain.
//!
//! Concurrency model:
//!
//! * one **accept loop** ([`Server::run`]) spawning a reader thread and
//!   a writer thread per connection;
//! * one **shared job pool** of `workers` executor threads pulling from
//!   a bounded queue — `queue_capacity` jobs deep, and a submission
//!   *blocks* once it is full, so backpressure propagates through TCP
//!   to fast clients instead of ballooning memory;
//! * a **per-connection concurrency gate**: at most `per_connection`
//!   jobs of one connection in flight at a time, so one aggressive
//!   pipeliner cannot monopolize the pool.
//!
//! Submitted specs are parsed, canonicalized, answered from the
//! [`ResultCache`] when possible, and otherwise lint-preflighted and
//! run through the [`Experiment`] facade with per-spec `workers`
//! overridden to 1 — parallelism comes from the pool, not from inside
//! a job (and results are unaffected; that is lint `IVL050`'s story).
//!
//! [`ServiceHandle::shutdown`] (the SIGTERM path of `faithful-serve`)
//! stops accepting connections, makes readers reject *new* submissions
//! with typed `shutdown` errors, drains every accepted job, and joins
//! everything before [`Server::run`] returns its [`ServeSummary`].

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use ivl_core::factory::ChannelRegistry;

use super::cache::{CacheCounters, ResultCache};
use super::protocol::{Frame, ReadOutcome, GREETING};
use super::wire::{render_error, render_result, ServedErrorKind};
use crate::experiment::Experiment;
use crate::lint::{lint_text_for_service, LintConfig};
use crate::spec::{fnv1a_64, ChannelSpec, ExperimentSpec, TopologySpec, WorkloadSpec};

/// How often idle connection readers wake to check for shutdown.
const IDLE_POLL: Duration = Duration::from_millis(150);

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `host:port`. Port 0 picks an ephemeral port
    /// (the default — ask [`Server::local_addr`] what was bound).
    pub addr: String,
    /// Executor threads in the shared job pool (clamped to ≥ 1).
    pub workers: usize,
    /// Bounded job-queue depth; submissions block (backpressure) when
    /// the queue is full.
    pub queue_capacity: usize,
    /// Maximum in-flight jobs per connection.
    pub per_connection: usize,
    /// In-memory result cache bound, in entries.
    pub cache_entries: usize,
    /// In-memory result cache bound, in bytes (specs + results).
    pub cache_bytes: usize,
    /// Optional on-disk cache directory (the `IVL_CACHE_DIR` knob of
    /// `faithful-serve`).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .min(8),
            queue_capacity: 256,
            per_connection: 64,
            cache_entries: 1024,
            cache_bytes: 64 << 20,
            cache_dir: None,
        }
    }
}

/// What one daemon lifetime did, returned by [`Server::run`] after the
/// drain completes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Jobs executed to completion (cache misses that ran).
    pub jobs: u64,
    /// Submissions answered from the cache.
    pub cache_hits: u64,
    /// Submissions rejected because the daemon was shutting down.
    pub rejected: u64,
    /// Submissions answered with spec/lint/run/internal errors.
    pub errors: u64,
    /// The result cache's own counters.
    pub cache: CacheCounters,
}

// ======================================================================
// Bounded job queue
// ======================================================================

struct Job {
    id: u64,
    /// The submitted text, verbatim (lint spans point into it).
    text: String,
    /// The canonical rendering (the cache key's preimage).
    canonical: String,
    hash: u64,
    cacheable: bool,
    spec: ExperimentSpec,
    reply: mpsc::Sender<Frame>,
    _guard: GateGuard,
}

struct JobQueue {
    state: Mutex<(VecDeque<Box<Job>>, bool)>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while the queue is full; `Err(job)` once closed.
    fn push(&self, job: Box<Job>) -> Result<(), Box<Job>> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if s.1 {
                return Err(job);
            }
            if s.0.len() < self.capacity {
                s.0.push_back(job);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self.not_full.wait(s).expect("queue lock");
        }
    }

    /// Blocks while empty; `None` once closed *and* drained.
    fn pop(&self) -> Option<Box<Job>> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = s.0.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if s.1 {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").1 = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

// ======================================================================
// Per-connection concurrency gate
// ======================================================================

struct Gate {
    count: Mutex<usize>,
    cv: Condvar,
    cap: usize,
}

impl Gate {
    fn new(cap: usize) -> Arc<Gate> {
        Arc::new(Gate {
            count: Mutex::new(0),
            cv: Condvar::new(),
            cap: cap.max(1),
        })
    }

    fn acquire(self: &Arc<Gate>) -> GateGuard {
        let mut n = self.count.lock().expect("gate lock");
        while *n >= self.cap {
            n = self.cv.wait(n).expect("gate lock");
        }
        *n += 1;
        GateGuard(Arc::clone(self))
    }

    fn in_flight(&self) -> usize {
        *self.count.lock().expect("gate lock")
    }
}

struct GateGuard(Arc<Gate>);

impl Drop for GateGuard {
    fn drop(&mut self) {
        let mut n = self.0.count.lock().expect("gate lock");
        *n = n.saturating_sub(1);
        self.0.cv.notify_all();
    }
}

// ======================================================================
// The server
// ======================================================================

struct Shared {
    shutdown: AtomicBool,
    queue: JobQueue,
    cache: Mutex<ResultCache>,
    connections: AtomicU64,
    jobs: AtomicU64,
    cache_hits: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
}

/// A bound (but not yet running) experiment service daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: usize,
    per_connection: usize,
}

/// A cloneable handle for stopping a running [`Server`] from another
/// thread (or a signal handler's watcher).
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServiceHandle {
    /// Begins the graceful drain: stop accepting connections, reject
    /// new submissions with typed `shutdown` errors, finish every
    /// accepted job, then let [`Server::run`] return. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
    }

    /// `true` once [`shutdown`](ServiceHandle::shutdown) was called.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Binds the listen socket and prepares the cache; nothing runs
    /// until [`run`](Server::run).
    ///
    /// # Errors
    ///
    /// Bind failures and cache-directory creation failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let mut cache = ResultCache::new(config.cache_entries, config.cache_bytes);
        if let Some(dir) = &config.cache_dir {
            cache = cache.with_disk(dir)?;
        }
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                queue: JobQueue::new(config.queue_capacity),
                cache: Mutex::new(cache),
                connections: AtomicU64::new(0),
                jobs: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                errors: AtomicU64::new(0),
            }),
            workers: config.workers.max(1),
            per_connection: config.per_connection,
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Socket introspection failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        Ok(self.addr)
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Serves until [`ServiceHandle::shutdown`], then drains every
    /// accepted job and returns the lifetime summary.
    #[must_use = "the summary says what the daemon did"]
    pub fn run(self) -> ServeSummary {
        let mut pool = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let shared = Arc::clone(&self.shared);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("ivl-serve-worker-{i}"))
                    .spawn(move || {
                        let registry = ChannelRegistry::with_builtins();
                        while let Some(job) = shared.queue.pop() {
                            process(&job, &registry, &shared);
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }
        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            let shared = Arc::clone(&self.shared);
            let n = shared.connections.fetch_add(1, Ordering::SeqCst);
            let per_connection = self.per_connection;
            conns.push(
                std::thread::Builder::new()
                    .name(format!("ivl-serve-conn-{n}"))
                    .spawn(move || serve_connection(stream, &shared, per_connection))
                    .expect("spawn connection thread"),
            );
        }
        drop(self.listener);
        for c in conns {
            let _ = c.join();
        }
        // All readers are gone, so nothing can push any more: close the
        // queue and let the pool drain what is left.
        self.shared.queue.close();
        for w in pool {
            let _ = w.join();
        }
        ServeSummary {
            connections: self.shared.connections.load(Ordering::SeqCst),
            jobs: self.shared.jobs.load(Ordering::SeqCst),
            cache_hits: self.shared.cache_hits.load(Ordering::SeqCst),
            rejected: self.shared.rejected.load(Ordering::SeqCst),
            errors: self.shared.errors.load(Ordering::SeqCst),
            cache: self.shared.cache.lock().expect("cache lock").counters(),
        }
    }
}

// ======================================================================
// Connection handling
// ======================================================================

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>, per_connection: usize) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Frame>();
    let writer = std::thread::Builder::new()
        .name("ivl-serve-writer".to_owned())
        .spawn(move || {
            let mut w = std::io::BufWriter::new(write_half);
            let hello = Frame::Hello {
                greeting: GREETING.to_owned(),
            };
            if hello.write_to(&mut w).is_err() {
                return;
            }
            while let Ok(frame) = rx.recv() {
                if frame.write_to(&mut w).is_err() {
                    break;
                }
            }
        })
        .expect("spawn writer thread");

    let gate = Gate::new(per_connection);
    let mut stream = stream;
    loop {
        match Frame::read_from(&mut stream) {
            Err(_) => {
                // Framing violation: answer typed (request id unknown —
                // 0 by convention) and hang up; resync is impossible.
                let _ = tx.send(Frame::Error {
                    id: 0,
                    text: render_error(
                        ServedErrorKind::Protocol,
                        "malformed frame; closing the connection",
                        &[],
                    ),
                });
                break;
            }
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) && gate.in_flight() == 0 {
                    break;
                }
            }
            Ok(ReadOutcome::Frame(Frame::Submit { id, spec })) => {
                handle_submit(id, spec, &tx, &gate, shared);
            }
            Ok(ReadOutcome::Frame(_)) => {
                let _ = tx.send(Frame::Error {
                    id: 0,
                    text: render_error(
                        ServedErrorKind::Protocol,
                        "unexpected frame type from a client; closing the connection",
                        &[],
                    ),
                });
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn handle_submit(
    id: u64,
    text: String,
    tx: &mpsc::Sender<Frame>,
    gate: &Arc<Gate>,
    shared: &Arc<Shared>,
) {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        let _ = tx.send(Frame::Error {
            id,
            text: render_error(
                ServedErrorKind::Shutdown,
                "the daemon is draining and no longer accepts jobs",
                &[],
            ),
        });
        return;
    }
    let spec: ExperimentSpec = match text.parse() {
        Ok(spec) => spec,
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Frame::Error {
                id,
                text: render_error(ServedErrorKind::Spec, &e.to_string(), &[]),
            });
            return;
        }
    };
    let canonical = spec.to_string();
    let hash = fnv1a_64(canonical.as_bytes());
    if let Some(result) = shared
        .cache
        .lock()
        .expect("cache lock")
        .get(hash, &canonical)
    {
        shared.cache_hits.fetch_add(1, Ordering::SeqCst);
        let _ = tx.send(Frame::Result {
            id,
            cached: true,
            text: result,
        });
        return;
    }
    // Admission: first the per-connection gate, then the bounded pool
    // queue. Both block — that *is* the backpressure.
    let guard = gate.acquire();
    let job = Box::new(Job {
        id,
        cacheable: replayable(&spec),
        canonical,
        hash,
        spec,
        text,
        reply: tx.clone(),
        _guard: guard,
    });
    if let Err(job) = shared.queue.push(job) {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        let _ = tx.send(Frame::Error {
            id: job.id,
            text: render_error(
                ServedErrorKind::Shutdown,
                "the daemon is draining and no longer accepts jobs",
                &[],
            ),
        });
    }
}

// ======================================================================
// Job execution
// ======================================================================

fn process(job: &Job, registry: &ChannelRegistry, shared: &Arc<Shared>) {
    // Lint preflight over the wire: reject Error-severity findings as a
    // typed error carrying every diagnostic (spans point into the
    // submitted text, not the canonical rendering).
    match lint_text_for_service(&job.text, registry) {
        Ok(report) => {
            if report.has_errors() {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                let _ = job.reply.send(Frame::Error {
                    id: job.id,
                    text: render_error(
                        ServedErrorKind::Lint,
                        "rejected by the lint preflight",
                        report.diagnostics(),
                    ),
                });
                return;
            }
        }
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            let _ = job.reply.send(Frame::Error {
                id: job.id,
                text: render_error(ServedErrorKind::Spec, &e.to_string(), &[]),
            });
            return;
        }
    }
    let mut spec = job.spec.clone();
    override_workers(&mut spec);
    let experiment = Experiment::new(spec).with_lint(LintConfig::Off);
    match catch_unwind(AssertUnwindSafe(|| experiment.run())) {
        Ok(Ok(result)) => {
            let rendered = render_result(&result);
            if job.cacheable {
                shared.cache.lock().expect("cache lock").insert(
                    job.hash,
                    &job.canonical,
                    rendered.clone(),
                );
            }
            shared.jobs.fetch_add(1, Ordering::SeqCst);
            let _ = job.reply.send(Frame::Result {
                id: job.id,
                cached: false,
                text: rendered,
            });
        }
        Ok(Err(e)) => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            let _ = job.reply.send(Frame::Error {
                id: job.id,
                text: render_error(ServedErrorKind::Run, &e.to_string(), &[]),
            });
        }
        Err(panic) => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_owned());
            let _ = job.reply.send(Frame::Error {
                id: job.id,
                text: render_error(
                    ServedErrorKind::Internal,
                    &format!("worker panicked: {message}"),
                    &[],
                ),
            });
        }
    }
}

/// The service schedules whole jobs onto its pool; per-spec sweep
/// parallelism is forced to 1 (results are unaffected — sweeps are
/// bit-identical across worker counts — which is why lint `IVL050` is
/// informational).
fn override_workers(spec: &mut ExperimentSpec) {
    match &mut spec.workload {
        WorkloadSpec::Digital(d) => d.workers = Some(1),
        WorkloadSpec::Analog(a) => a.workers = Some(1),
        WorkloadSpec::Channel(_) | WorkloadSpec::Spf(_) => {}
    }
}

/// `true` when replaying the spec is guaranteed bit-identical, i.e. the
/// result may be cached. The only exception in the whole spec language:
/// digital sweeps where an *unseeded* scenario meets a stochastic
/// channel (noise drawn from streams left wherever the previous run put
/// them).
fn replayable(spec: &ExperimentSpec) -> bool {
    let WorkloadSpec::Digital(d) = &spec.workload else {
        return true;
    };
    d.scenarios.iter().all(|s| s.seed.is_some()) || !topology_stochastic(&d.topology)
}

fn topology_stochastic(topology: &TopologySpec) -> bool {
    match topology {
        TopologySpec::InverterChain { channel, .. }
        | TopologySpec::Grid2d { channel, .. }
        | TopologySpec::RandomDag { channel, .. }
        | TopologySpec::FatTree { channel, .. } => channel_stochastic(channel),
        TopologySpec::Netlist(n) => n
            .edges
            .iter()
            .any(|e| e.channel.as_ref().is_some_and(channel_stochastic)),
    }
}

fn channel_stochastic(c: &ChannelSpec) -> bool {
    if !matches!(
        c.kind.as_str(),
        "pure" | "inertial" | "ddm" | "involution" | "eta"
    ) {
        return true; // custom kind: conservatively assume stochastic
    }
    matches!(
        c.params.text_or("noise", "zero"),
        Ok("uniform" | "gaussian")
    )
}
