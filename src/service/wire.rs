//! Result and error documents on the wire.
//!
//! The service speaks `faithful/1` in both directions: responses are
//! rendered as versioned value documents with the same printer the
//! spec layer uses, so every finite `f64` (signal transition times,
//! analog samples, theory quantities) round-trips *exactly* — which is
//! what makes a served result byte-comparable to an in-process
//! [`Experiment::run`](crate::Experiment::run) and lets the cache
//! replay stored bytes verbatim.
//!
//! [`render_result`] is the single serializer used by the daemon, the
//! golden tests and the benchmark harness; [`parse_result`] is the
//! typed client-side view.

use ivl_analog::characterize::{DelaySample, DeviationSample};
use ivl_circuit::SweepStats;
use ivl_core::{Bit, Edge, Signal};

use crate::error::SpecError;
use crate::experiment::{AnalogResult, ExperimentResult};
use crate::lint::{Diagnostic, Severity};
use crate::spec::{as_f64, as_text, as_u64, Fields};
use crate::value::{parse_document, render_document, Value, ValueKind};

fn field(name: &str, value: Value) -> (String, Value) {
    (name.to_owned(), value)
}

// ======================================================================
// Signals
// ======================================================================

fn signal_value(name: Option<&str>, s: &Signal) -> Value {
    let mut fields = Vec::with_capacity(3);
    if let Some(n) = name {
        fields.push(field("name", Value::str(n)));
    }
    fields.push(field("initial", Value::bool(s.initial() == Bit::One)));
    fields.push(field(
        "times",
        Value::list(s.transitions().iter().map(|t| Value::num(t.time)).collect()),
    ));
    Value::node("sig", fields)
}

fn signal_from_value(value: Value) -> Result<(Option<String>, Signal), SpecError> {
    let mut f = Fields::of(value, "sig")?;
    f.expect_tag(&["sig"])?;
    let name = match f.take("name") {
        Some(v) => Some(as_text(&v, "sig", "name")?),
        None => None,
    };
    let initial = if f.bool("initial")? {
        Bit::One
    } else {
        Bit::Zero
    };
    let times = f
        .list("times")?
        .iter()
        .map(|v| as_f64(v, "sig", "times"))
        .collect::<Result<Vec<f64>, _>>()?;
    f.finish()?;
    let signal = Signal::from_times(initial, &times)
        .map_err(|e| SpecError::new(format!("invalid served signal: {e}")))?;
    Ok((name, signal))
}

fn edge_word(edge: Edge) -> Value {
    Value::word(match edge {
        Edge::Rising => "rising",
        Edge::Falling => "falling",
    })
}

fn edge_from_value(v: &Value) -> Result<Edge, SpecError> {
    match as_text(v, "sample", "edge")?.as_str() {
        "rising" => Ok(Edge::Rising),
        "falling" => Ok(Edge::Falling),
        other => Err(SpecError::new(format!("unknown edge {other:?}"))),
    }
}

// ======================================================================
// Results: render
// ======================================================================

/// Renders an [`ExperimentResult`] as the `faithful/1 result { … }`
/// document the daemon sends. Deterministic and canonical: the same
/// result always renders to the same bytes.
#[must_use]
pub fn render_result(result: &ExperimentResult) -> String {
    render_document(&result_to_value(result))
}

fn result_to_value(result: &ExperimentResult) -> Value {
    let mut fields = Vec::new();
    match result {
        ExperimentResult::Channel(c) => {
            fields.push(field("workload", Value::word("channel")));
            fields.push(field("output", signal_value(None, &c.output)));
        }
        ExperimentResult::Digital(d) => {
            fields.push(field("workload", Value::word("digital")));
            fields.push(field("completed", Value::int(d.completed as u64)));
            fields.push(field("failed", Value::int(d.failed as u64)));
            fields.push(field("retried", Value::int(d.retried)));
            fields.push(field(
                "outcomes",
                Value::list(
                    d.outcomes
                        .iter()
                        .map(|o| {
                            let mut of = vec![
                                field("label", Value::str(o.label.clone())),
                                field(
                                    "signals",
                                    Value::list(
                                        o.signals
                                            .iter()
                                            .map(|(n, s)| signal_value(Some(n), s))
                                            .collect(),
                                    ),
                                ),
                            ];
                            if let Some(vcd) = &o.vcd {
                                of.push(field("vcd", Value::str(vcd.clone())));
                            }
                            if let Some(e) = &o.error {
                                of.push(field("error", Value::str(e.to_string())));
                            }
                            Value::node("outcome", of)
                        })
                        .collect(),
                ),
            ));
            if let Some(s) = &d.stats {
                let mut sf = vec![
                    field("scenarios", Value::int(s.scenarios as u64)),
                    field("failures", Value::int(s.failures as u64)),
                    field("retried", Value::int(s.retried)),
                    field("processed_events", Value::int(s.processed_events)),
                    field("scheduled_events", Value::int(s.scheduled_events)),
                    field("output_transitions", Value::int(s.output_transitions)),
                ];
                for (name, v) in [
                    ("min_pulse_width", s.min_pulse_width),
                    ("max_pulse_width", s.max_pulse_width),
                    ("min_period", s.min_period),
                ] {
                    if let Some(v) = v {
                        sf.push(field(name, Value::num(v)));
                    }
                }
                fields.push(field("stats", Value::node("stats", sf)));
            }
            fields.push(field(
                "failures",
                Value::list(
                    d.failures
                        .iter()
                        .map(|x| {
                            let mut xf = vec![
                                field("index", Value::int(x.index as u64)),
                                field("label", Value::str(x.label.clone())),
                            ];
                            if let Some(seed) = x.seed {
                                xf.push(field("seed", Value::int(seed)));
                            }
                            xf.push(field("retries", Value::int(u64::from(x.retries))));
                            xf.push(field("cause", Value::str(x.cause.to_string())));
                            Value::node("failure", xf)
                        })
                        .collect(),
                ),
            ));
            fields.push(field(
                "quarantine",
                Value::list(
                    d.quarantine
                        .iter()
                        .map(|q| {
                            Value::node(
                                "quarantined",
                                vec![
                                    field("index", Value::int(q.index as u64)),
                                    field("label", Value::str(q.label.clone())),
                                    field("spec", Value::str(q.spec.clone())),
                                ],
                            )
                        })
                        .collect(),
                ),
            ));
        }
        ExperimentResult::Analog(a) => {
            fields.push(field("workload", Value::word("analog")));
            match a {
                AnalogResult::Samples(s) => {
                    fields.push(field("task", Value::word("samples")));
                    fields.push(field("samples", delay_samples_value(s)));
                }
                AnalogResult::Characterization { up, down } => {
                    fields.push(field("task", Value::word("characterization")));
                    fields.push(field("up", delay_samples_value(up)));
                    fields.push(field("down", delay_samples_value(down)));
                }
                AnalogResult::Deviations(d) => {
                    fields.push(field("task", Value::word("deviations")));
                    fields.push(field(
                        "deviations",
                        Value::list(
                            d.iter()
                                .map(|s| {
                                    Value::node(
                                        "sample",
                                        vec![
                                            field("offset", Value::num(s.offset)),
                                            field("deviation", Value::num(s.deviation)),
                                            field("edge", edge_word(s.edge)),
                                        ],
                                    )
                                })
                                .collect(),
                        ),
                    ));
                }
            }
        }
        ExperimentResult::Spf(s) => {
            fields.push(field("workload", Value::word("spf")));
            let t = &s.theory;
            fields.push(field(
                "theory",
                Value::node(
                    "theory",
                    vec![
                        field("delta_min", Value::num(t.delta_min)),
                        field("eta_minus", Value::num(t.eta_minus)),
                        field("eta_plus", Value::num(t.eta_plus)),
                        field("tau", Value::num(t.tau)),
                        field("delta_bar", Value::num(t.delta_bar)),
                        field("period", Value::num(t.period)),
                        field("gamma", Value::num(t.gamma)),
                        field("delta0_tilde", Value::num(t.delta0_tilde)),
                        field("growth", Value::num(t.growth)),
                        field("filter_bound", Value::num(t.filter_bound)),
                        field("lock_bound", Value::num(t.lock_bound)),
                    ],
                ),
            ));
            if let Some(run) = &s.run {
                fields.push(field(
                    "run",
                    Value::node(
                        "run",
                        vec![
                            field("or", signal_value(None, &run.or_signal)),
                            field("feedback", signal_value(None, &run.feedback_signal)),
                            field("output", signal_value(None, &run.output)),
                            field("events", Value::int(run.events as u64)),
                        ],
                    ),
                ));
            }
        }
    }
    Value::node("result", fields)
}

fn delay_samples_value(samples: &[DelaySample]) -> Value {
    Value::list(
        samples
            .iter()
            .map(|s| {
                Value::node(
                    "sample",
                    vec![
                        field("offset", Value::num(s.offset)),
                        field("delay", Value::num(s.delay)),
                        field("edge", edge_word(s.edge)),
                    ],
                )
            })
            .collect(),
    )
}

// ======================================================================
// Results: parse (the typed client-side view)
// ======================================================================

/// A result document decoded client-side.
///
/// Mirrors [`ExperimentResult`] with wire-faithful types: simulation
/// errors arrive as their rendered messages (the typed originals live
/// server-side), everything numeric round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum ServedResult {
    /// A channel application: the output signal.
    Channel {
        /// The channel's output.
        output: Signal,
    },
    /// A digital sweep.
    Digital {
        /// Scenarios that completed.
        completed: u64,
        /// Scenarios that failed terminally.
        failed: u64,
        /// Retries spent.
        retried: u64,
        /// Per-scenario outcomes, in sweep order.
        outcomes: Vec<ServedOutcome>,
        /// Aggregate output statistics, when the spec asked for them.
        stats: Option<SweepStats>,
    },
    /// An analog experiment (samples, characterization or deviations).
    Analog(AnalogResult),
    /// An SPF experiment: theory quantities plus the optional run.
    Spf {
        /// The Section IV theory bundle.
        theory: ServedTheory,
        /// The circuit run, when simulation was requested.
        run: Option<ServedRun>,
    },
}

/// One served scenario outcome of a digital sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedOutcome {
    /// The scenario's label.
    pub label: String,
    /// Output-port signals, `(port, signal)`.
    pub signals: Vec<(String, Signal)>,
    /// The VCD dump, when the spec asked for one.
    pub vcd: Option<String>,
    /// The failure message, for scenarios that ended in an error.
    pub error: Option<String>,
}

/// The SPF theory quantities as served.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedTheory {
    /// `δ_min` of the delay pair.
    pub delta_min: f64,
    /// `η⁻` of the bounds used.
    pub eta_minus: f64,
    /// `η⁺` of the bounds used.
    pub eta_plus: f64,
    /// The Lemma 5 fixed point `τ`.
    pub tau: f64,
    /// Worst-case self-repeating up-time `∆`.
    pub delta_bar: f64,
    /// Worst-case period `P`.
    pub period: f64,
    /// Worst-case duty cycle `γ`.
    pub gamma: f64,
    /// Lemma 8 threshold `∆̃₀`.
    pub delta0_tilde: f64,
    /// Growth ratio `a` of Lemma 7.
    pub growth: f64,
    /// Lemma 4 filtering bound.
    pub filter_bound: f64,
    /// Lemma 3 locking bound.
    pub lock_bound: f64,
}

/// The served signals of an SPF circuit run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedRun {
    /// The OR gate's output.
    pub or_signal: Signal,
    /// The feedback channel's output.
    pub feedback_signal: Signal,
    /// The circuit output after the high-threshold buffer.
    pub output: Signal,
    /// Simulation events processed.
    pub events: u64,
}

/// Parses a served result document.
///
/// # Errors
///
/// [`SpecError`] when the text is not a well-formed result document.
pub fn parse_result(text: &str) -> Result<ServedResult, SpecError> {
    let mut f = Fields::of(parse_document(text)?, "result")?;
    f.expect_tag(&["result"])?;
    let workload = as_text(&f.req("workload")?, "result", "workload")?;
    let result = match workload.as_str() {
        "channel" => {
            let (_, output) = signal_from_value(f.req("output")?)?;
            ServedResult::Channel { output }
        }
        "digital" => {
            let completed = f.u64("completed")?;
            let failed = f.u64("failed")?;
            let retried = f.u64("retried")?;
            let mut outcomes = Vec::new();
            for v in f.list("outcomes")? {
                let mut of = Fields::of(v, "outcome")?;
                of.expect_tag(&["outcome"])?;
                let label = of.string("label")?;
                let mut signals = Vec::new();
                for sv in of.list("signals")? {
                    let (name, signal) = signal_from_value(sv)?;
                    let name = name
                        .ok_or_else(|| SpecError::new("outcome signal is missing its port name"))?;
                    signals.push((name, signal));
                }
                let vcd = of
                    .take("vcd")
                    .map(|v| as_text(&v, "outcome", "vcd"))
                    .transpose()?;
                let error = of
                    .take("error")
                    .map(|v| as_text(&v, "outcome", "error"))
                    .transpose()?;
                of.finish()?;
                outcomes.push(ServedOutcome {
                    label,
                    signals,
                    vcd,
                    error,
                });
            }
            let stats = match f.take("stats") {
                None => None,
                Some(v) => {
                    let mut sf = Fields::of(v, "stats")?;
                    sf.expect_tag(&["stats"])?;
                    let stats = SweepStats {
                        scenarios: sf.u64("scenarios")? as usize,
                        failures: sf.u64("failures")? as usize,
                        retried: sf.u64("retried")?,
                        processed_events: sf.u64("processed_events")?,
                        scheduled_events: sf.u64("scheduled_events")?,
                        output_transitions: sf.u64("output_transitions")?,
                        min_pulse_width: sf
                            .take("min_pulse_width")
                            .map(|v| as_f64(&v, "stats", "min_pulse_width"))
                            .transpose()?,
                        max_pulse_width: sf
                            .take("max_pulse_width")
                            .map(|v| as_f64(&v, "stats", "max_pulse_width"))
                            .transpose()?,
                        min_period: sf
                            .take("min_period")
                            .map(|v| as_f64(&v, "stats", "min_period"))
                            .transpose()?,
                    };
                    sf.finish()?;
                    Some(stats)
                }
            };
            // failures and quarantine are carried for completeness but
            // fold into the typed view only as counts; drain them so
            // unknown-field checking still covers the rest.
            f.take("failures");
            f.take("quarantine");
            ServedResult::Digital {
                completed,
                failed,
                retried,
                outcomes,
                stats,
            }
        }
        "analog" => {
            let task = as_text(&f.req("task")?, "result", "task")?;
            let analog = match task.as_str() {
                "samples" => AnalogResult::Samples(delay_samples_from(f.list("samples")?)?),
                "characterization" => AnalogResult::Characterization {
                    up: delay_samples_from(f.list("up")?)?,
                    down: delay_samples_from(f.list("down")?)?,
                },
                "deviations" => {
                    let mut out = Vec::new();
                    for v in f.list("deviations")? {
                        let mut sf = Fields::of(v, "sample")?;
                        sf.expect_tag(&["sample"])?;
                        let sample = DeviationSample {
                            offset: sf.f64("offset")?,
                            deviation: sf.f64("deviation")?,
                            edge: edge_from_value(&sf.req("edge")?)?,
                        };
                        sf.finish()?;
                        out.push(sample);
                    }
                    AnalogResult::Deviations(out)
                }
                other => {
                    return Err(SpecError::new(format!("unknown analog task {other:?}")));
                }
            };
            ServedResult::Analog(analog)
        }
        "spf" => {
            let mut tf = Fields::of(f.req("theory")?, "theory")?;
            tf.expect_tag(&["theory"])?;
            let theory = ServedTheory {
                delta_min: tf.f64("delta_min")?,
                eta_minus: tf.f64("eta_minus")?,
                eta_plus: tf.f64("eta_plus")?,
                tau: tf.f64("tau")?,
                delta_bar: tf.f64("delta_bar")?,
                period: tf.f64("period")?,
                gamma: tf.f64("gamma")?,
                delta0_tilde: tf.f64("delta0_tilde")?,
                growth: tf.f64("growth")?,
                filter_bound: tf.f64("filter_bound")?,
                lock_bound: tf.f64("lock_bound")?,
            };
            tf.finish()?;
            let run = match f.take("run") {
                None => None,
                Some(v) => {
                    let mut rf = Fields::of(v, "run")?;
                    rf.expect_tag(&["run"])?;
                    let run = ServedRun {
                        or_signal: signal_from_value(rf.req("or")?)?.1,
                        feedback_signal: signal_from_value(rf.req("feedback")?)?.1,
                        output: signal_from_value(rf.req("output")?)?.1,
                        events: rf.u64("events")?,
                    };
                    rf.finish()?;
                    Some(run)
                }
            };
            ServedResult::Spf { theory, run }
        }
        other => {
            return Err(SpecError::new(format!("unknown result workload {other:?}")));
        }
    };
    f.finish()?;
    Ok(result)
}

fn delay_samples_from(values: Vec<Value>) -> Result<Vec<DelaySample>, SpecError> {
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        let mut sf = Fields::of(v, "sample")?;
        sf.expect_tag(&["sample"])?;
        let sample = DelaySample {
            offset: sf.f64("offset")?,
            delay: sf.f64("delay")?,
            edge: edge_from_value(&sf.req("edge")?)?,
        };
        sf.finish()?;
        out.push(sample);
    }
    Ok(out)
}

// ======================================================================
// Errors on the wire
// ======================================================================

/// What class of failure an error frame reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedErrorKind {
    /// The submitted text does not parse as a `faithful/1` spec.
    Spec,
    /// The lint preflight found `Error`-severity diagnostics.
    Lint,
    /// The experiment ran and failed (construction, validation or
    /// simulation error).
    Run,
    /// The daemon is shutting down and no longer accepts new jobs.
    Shutdown,
    /// The peer violated the frame protocol or sent an undecodable
    /// document.
    Protocol,
    /// The daemon contained an internal failure (e.g. a worker panic).
    Internal,
}

impl ServedErrorKind {
    fn as_word(self) -> &'static str {
        match self {
            ServedErrorKind::Spec => "spec",
            ServedErrorKind::Lint => "lint",
            ServedErrorKind::Run => "run",
            ServedErrorKind::Shutdown => "shutdown",
            ServedErrorKind::Protocol => "protocol",
            ServedErrorKind::Internal => "internal",
        }
    }

    fn from_word(w: &str) -> Option<Self> {
        Some(match w {
            "spec" => ServedErrorKind::Spec,
            "lint" => ServedErrorKind::Lint,
            "run" => ServedErrorKind::Run,
            "shutdown" => ServedErrorKind::Shutdown,
            "protocol" => ServedErrorKind::Protocol,
            "internal" => ServedErrorKind::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ServedErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_word())
    }
}

/// One diagnostic attached to a served `lint` error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedDiagnostic {
    /// The stable lint code (`IVL…`).
    pub code: String,
    /// The finding's severity.
    pub severity: Severity,
    /// The finding's message.
    pub message: String,
    /// 1-based `(line, column)` into the submitted text, when known.
    pub span: Option<(u32, u32)>,
}

/// A typed error decoded from an error frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedError {
    /// The failure class.
    pub kind: ServedErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Lint findings (all severities), for `Lint` errors.
    pub diagnostics: Vec<ServedDiagnostic>,
}

impl std::fmt::Display for ServedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)?;
        for d in &self.diagnostics {
            write!(f, "\n  {}[{}]: {}", d.severity, d.code, d.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for ServedError {}

/// Renders an error document for an error frame.
pub(crate) fn render_error(
    kind: ServedErrorKind,
    message: &str,
    diagnostics: &[Diagnostic],
) -> String {
    let mut fields = vec![
        field("kind", Value::word(kind.as_word())),
        field("message", Value::str(message)),
    ];
    if !diagnostics.is_empty() {
        fields.push(field(
            "diagnostics",
            Value::list(
                diagnostics
                    .iter()
                    .map(|d| {
                        let mut df = vec![
                            field("code", Value::str(d.code)),
                            field("severity", Value::word(d.severity.to_string())),
                            field("message", Value::str(d.message.clone())),
                        ];
                        if let Some(span) = d.span {
                            df.push(field("line", Value::int(u64::from(span.line))));
                            df.push(field("column", Value::int(u64::from(span.column))));
                        }
                        Value::node("diag", df)
                    })
                    .collect(),
            ),
        ));
    }
    render_document(&Value::node("error", fields))
}

/// Parses an error document from an error frame.
///
/// # Errors
///
/// [`SpecError`] when the text is not a well-formed error document.
pub fn parse_error(text: &str) -> Result<ServedError, SpecError> {
    let mut f = Fields::of(parse_document(text)?, "error")?;
    f.expect_tag(&["error"])?;
    let kind_word = as_text(&f.req("kind")?, "error", "kind")?;
    let kind = ServedErrorKind::from_word(&kind_word)
        .ok_or_else(|| SpecError::new(format!("unknown error kind {kind_word:?}")))?;
    let message = f.string("message")?;
    let mut diagnostics = Vec::new();
    if let Some(list) = f.take("diagnostics") {
        let ValueKind::List(items) = list.into_kind() else {
            return Err(SpecError::new(
                "error: field \"diagnostics\" must be a list",
            ));
        };
        for v in items {
            let mut df = Fields::of(v, "diag")?;
            df.expect_tag(&["diag"])?;
            let code = df.string("code")?;
            let severity_word = as_text(&df.req("severity")?, "diag", "severity")?;
            let severity = match severity_word.as_str() {
                "info" => Severity::Info,
                "warning" => Severity::Warning,
                "error" => Severity::Error,
                other => {
                    return Err(SpecError::new(format!("unknown severity {other:?}")));
                }
            };
            let message = df.string("message")?;
            let line = df
                .take("line")
                .map(|v| as_u64(&v, "diag", "line"))
                .transpose()?;
            let column = df
                .take("column")
                .map(|v| as_u64(&v, "diag", "column"))
                .transpose()?;
            df.finish()?;
            let span = match (line, column) {
                (Some(l), Some(c)) => Some((l as u32, c as u32)),
                _ => None,
            };
            diagnostics.push(ServedDiagnostic {
                code,
                severity,
                message,
                span,
            });
        }
    }
    f.finish()?;
    Ok(ServedError {
        kind,
        message,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Span;
    use crate::Experiment;

    #[test]
    fn channel_results_round_trip_exactly() {
        let result = Experiment::parse(
            "faithful/1 channel { channel = involution { delay = exp; tau = 1.0; t_p = 0.5; \
             v_th = 0.5 }; input = pulse { at = 0.25; width = 3.5 } }",
        )
        .unwrap()
        .run()
        .unwrap();
        let text = render_result(&result);
        let ServedResult::Channel { output } = parse_result(&text).unwrap() else {
            panic!("expected a channel result");
        };
        assert_eq!(&output, &result.channel().unwrap().output);
        // rendering is canonical: a reparse of the document re-renders
        // to the same bytes
        assert_eq!(render_document(&parse_document(&text).unwrap()), text);
    }

    #[test]
    fn error_documents_round_trip() {
        let diagnostics = vec![Diagnostic {
            code: "IVL050",
            severity: Severity::Info,
            message: "workers = 4 is ignored".to_owned(),
            span: Some(Span { line: 3, column: 9 }),
        }];
        let text = render_error(ServedErrorKind::Lint, "rejected by lint", &diagnostics);
        let back = parse_error(&text).unwrap();
        assert_eq!(back.kind, ServedErrorKind::Lint);
        assert_eq!(back.message, "rejected by lint");
        assert_eq!(back.diagnostics.len(), 1);
        assert_eq!(back.diagnostics[0].code, "IVL050");
        assert_eq!(back.diagnostics[0].severity, Severity::Info);
        assert_eq!(back.diagnostics[0].span, Some((3, 9)));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_result("faithful/1 result { workload = cooking }").is_err());
        assert!(parse_result("not a document").is_err());
        assert!(parse_error("faithful/1 error { kind = weird; message = \"x\" }").is_err());
    }
}
