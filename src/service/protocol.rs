//! The `faithful-serve/1` frame layer: length-prefixed typed frames
//! over any `Read`/`Write` pair.
//!
//! Wire layout of one frame: `[type: u8][request id: u64 BE]
//! [length: u32 BE][payload: length bytes of UTF-8]`. See the
//! [module docs](crate::service) for the frame-type table.

use std::io::{self, Read, Write};

/// The greeting carried by the server's `HELLO` frame; the trailing
/// number is the protocol version.
pub const GREETING: &str = "faithful-serve/1";

/// Upper bound on a single frame payload (64 MiB): a malformed or
/// hostile length prefix must not drive an unbounded allocation.
pub(crate) const MAX_FRAME_LEN: u32 = 64 << 20;

const TAG_HELLO: u8 = 1;
const TAG_SUBMIT: u8 = 2;
const TAG_RESULT: u8 = 3;
const TAG_RESULT_CACHED: u8 = 4;
const TAG_ERROR: u8 = 5;

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Frame {
    /// Server greeting, sent once per connection before anything else.
    Hello { greeting: String },
    /// Client request: run this spec document.
    Submit { id: u64, spec: String },
    /// Server response: the result document for request `id`;
    /// `cached` distinguishes a cache replay from a fresh run (the
    /// payload bytes are identical either way).
    Result { id: u64, cached: bool, text: String },
    /// Server response: a typed error document for request `id`.
    Error { id: u64, text: String },
}

/// What one attempt to read a frame produced.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete frame.
    Frame(Frame),
    /// The peer closed the connection cleanly (EOF between frames).
    Eof,
    /// A read timeout expired while waiting *between* frames (only
    /// possible when the stream has a read timeout set); no bytes were
    /// consumed.
    Idle,
}

impl Frame {
    fn parts(&self) -> (u8, u64, &str) {
        match self {
            Frame::Hello { greeting } => (TAG_HELLO, 0, greeting),
            Frame::Submit { id, spec } => (TAG_SUBMIT, *id, spec),
            Frame::Result { id, cached, text } => (
                if *cached {
                    TAG_RESULT_CACHED
                } else {
                    TAG_RESULT
                },
                *id,
                text,
            ),
            Frame::Error { id, text } => (TAG_ERROR, *id, text),
        }
    }

    /// Serializes the frame as one `write_all`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; refuses payloads over [`MAX_FRAME_LEN`].
    pub(crate) fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (tag, id, payload) = self.parts();
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|len| *len <= MAX_FRAME_LEN)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "frame payload of {} bytes exceeds the protocol limit",
                        payload.len()
                    ),
                )
            })?;
        let mut buf = Vec::with_capacity(13 + payload.len());
        buf.push(tag);
        buf.extend_from_slice(&id.to_be_bytes());
        buf.extend_from_slice(&len.to_be_bytes());
        buf.extend_from_slice(payload.as_bytes());
        w.write_all(&buf)?;
        w.flush()
    }

    /// Reads one frame. `Idle` is returned only when the stream has a
    /// read timeout and it expires before the first byte of a frame;
    /// once a frame has started, the remaining bytes are read to
    /// completion across timeouts.
    ///
    /// # Errors
    ///
    /// `InvalidData` on unknown frame types, oversized length prefixes,
    /// non-UTF-8 payloads, or EOF mid-frame.
    pub(crate) fn read_from(r: &mut impl Read) -> io::Result<ReadOutcome> {
        let mut tag = [0u8; 1];
        loop {
            match r.read(&mut tag) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadOutcome::Idle);
                }
                Err(e) => return Err(e),
            }
        }
        let mut header = [0u8; 12];
        read_full(r, &mut header)?;
        let id = u64::from_be_bytes(header[0..8].try_into().expect("8-byte slice"));
        let len = u32::from_be_bytes(header[8..12].try_into().expect("4-byte slice"));
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the protocol limit of {MAX_FRAME_LEN}"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        read_full(r, &mut payload)?;
        let text = String::from_utf8(payload).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8")
        })?;
        match tag[0] {
            TAG_HELLO => Ok(ReadOutcome::Frame(Frame::Hello { greeting: text })),
            TAG_SUBMIT => Ok(ReadOutcome::Frame(Frame::Submit { id, spec: text })),
            TAG_RESULT => Ok(ReadOutcome::Frame(Frame::Result {
                id,
                cached: false,
                text,
            })),
            TAG_RESULT_CACHED => Ok(ReadOutcome::Frame(Frame::Result {
                id,
                cached: true,
                text,
            })),
            TAG_ERROR => Ok(ReadOutcome::Frame(Frame::Error { id, text })),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown frame type {other}"),
            )),
        }
    }
}

/// `read_exact` that rides out read timeouts and EINTR: a frame that
/// has started is read to completion, EOF mid-frame is `InvalidData`
/// (a torn frame, not a clean close).
fn read_full(r: &mut impl Read, mut buf: &mut [u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        let mut r = buf.as_slice();
        match Frame::read_from(&mut r).unwrap() {
            ReadOutcome::Frame(back) => assert_eq!(back, frame),
            other => panic!("expected a frame, got {other:?}"),
        }
        assert!(matches!(
            Frame::read_from(&mut r).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame::Hello {
            greeting: GREETING.to_owned(),
        });
        round_trip(Frame::Submit {
            id: 7,
            spec: "faithful/1 channel {}".to_owned(),
        });
        round_trip(Frame::Result {
            id: u64::MAX,
            cached: false,
            text: "faithful/1 result {}".to_owned(),
        });
        round_trip(Frame::Result {
            id: 3,
            cached: true,
            text: "faithful/1 result {}".to_owned(),
        });
        round_trip(Frame::Error {
            id: 9,
            text: "faithful/1 error {}".to_owned(),
        });
    }

    #[test]
    fn cached_and_fresh_results_differ_only_in_the_type_byte() {
        let fresh = Frame::Result {
            id: 5,
            cached: false,
            text: "payload".to_owned(),
        };
        let cached = Frame::Result {
            id: 5,
            cached: true,
            text: "payload".to_owned(),
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        fresh.write_to(&mut a).unwrap();
        cached.write_to(&mut b).unwrap();
        assert_ne!(a[0], b[0]);
        assert_eq!(a[1..], b[1..]);
    }

    #[test]
    fn torn_and_hostile_frames_are_rejected() {
        // EOF mid-frame
        let mut buf = Vec::new();
        Frame::Error {
            id: 1,
            text: "x".repeat(64),
        }
        .write_to(&mut buf)
        .unwrap();
        buf.truncate(20);
        let err = match Frame::read_from(&mut buf.as_slice()) {
            Err(e) => e,
            other => panic!("torn frame accepted: {other:?}"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // hostile length prefix
        let mut hostile = vec![TAG_ERROR];
        hostile.extend_from_slice(&1u64.to_be_bytes());
        hostile.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = Frame::read_from(&mut hostile.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // unknown tag
        let mut unknown = vec![200u8];
        unknown.extend_from_slice(&0u64.to_be_bytes());
        unknown.extend_from_slice(&0u32.to_be_bytes());
        let err = Frame::read_from(&mut unknown.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
