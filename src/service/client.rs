//! Client side: a pipelined connection handle plus the multi-connection
//! batch driver behind the `faithful-client` bin and the `service`
//! benchmark tier.

use std::collections::HashMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use super::protocol::{Frame, ReadOutcome, GREETING};
use super::wire::{parse_error, parse_result, ServedError, ServedErrorKind, ServedResult};

/// One decoded server response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id this answers (echoed from the submit).
    pub id: u64,
    /// `true` when the result came out of the server's cache.
    pub cached: bool,
    /// The raw response document, byte-exact as served. For results
    /// this is the `faithful/1 result { … }` text — byte-identical
    /// between a fresh run and a cache replay of the same spec.
    pub payload: String,
    /// The typed view: a decoded result, or the served error.
    pub reply: Result<ServedResult, ServedError>,
}

/// A connection to a `faithful-serve` daemon.
///
/// Requests pipeline: issue any number of [`submit`](Self::submit)s,
/// then collect responses with [`recv`](Self::recv) — they may arrive
/// in any order, matched by id. [`run_one`](Self::run_one) is the
/// blocking single-spec convenience.
pub struct ServiceClient {
    stream: TcpStream,
    next_id: u64,
}

impl ServiceClient {
    /// Connects and validates the server's `HELLO` greeting.
    ///
    /// # Errors
    ///
    /// Connection failures; `InvalidData` when the peer is not a
    /// compatible `faithful-serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = ServiceClient { stream, next_id: 0 };
        match client.read_frame()? {
            Frame::Hello { greeting } if greeting == GREETING => Ok(client),
            Frame::Hello { greeting } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("incompatible server: {greeting:?} (need {GREETING:?})"),
            )),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server did not open with a HELLO frame",
            )),
        }
    }

    /// Sends one spec document; returns the request id to match the
    /// eventual response.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn submit(&mut self, spec_text: &str) -> io::Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        Frame::Submit {
            id,
            spec: spec_text.to_owned(),
        }
        .write_to(&mut (&self.stream))?;
        Ok(id)
    }

    /// Receives the next response frame (any pending id).
    ///
    /// # Errors
    ///
    /// Read failures; `UnexpectedEof` when the server hung up;
    /// `InvalidData` on protocol violations.
    pub fn recv(&mut self) -> io::Result<Response> {
        match self.read_frame()? {
            Frame::Result { id, cached, text } => {
                let reply = parse_result(&text).map_err(|e| ServedError {
                    kind: ServedErrorKind::Protocol,
                    message: format!("undecodable result document: {e}"),
                    diagnostics: Vec::new(),
                });
                Ok(Response {
                    id,
                    cached,
                    payload: text,
                    reply,
                })
            }
            Frame::Error { id, text } => {
                let error = parse_error(&text).unwrap_or_else(|e| ServedError {
                    kind: ServedErrorKind::Protocol,
                    message: format!("undecodable error document: {e}"),
                    diagnostics: Vec::new(),
                });
                Ok(Response {
                    id,
                    cached: false,
                    payload: text,
                    reply: Err(error),
                })
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected frame from the server",
            )),
        }
    }

    /// Submits one spec and blocks for its response.
    ///
    /// # Errors
    ///
    /// Propagates [`submit`](Self::submit) and [`recv`](Self::recv)
    /// failures.
    pub fn run_one(&mut self, spec_text: &str) -> io::Result<Response> {
        let id = self.submit(spec_text)?;
        loop {
            let response = self.recv()?;
            if response.id == id {
                return Ok(response);
            }
        }
    }

    fn read_frame(&mut self) -> io::Result<Frame> {
        match Frame::read_from(&mut self.stream)? {
            ReadOutcome::Frame(frame) => Ok(frame),
            ReadOutcome::Eof | ReadOutcome::Idle => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }
}

// ======================================================================
// Batch driver
// ======================================================================

/// Knobs of [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Concurrent connections.
    pub connections: usize,
    /// Maximum in-flight requests per connection.
    pub pipeline: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            connections: 4,
            pipeline: 32,
        }
    }
}

/// What a batch run did, with client-observed latency percentiles.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Specs submitted.
    pub submitted: usize,
    /// Successful results.
    pub ok: usize,
    /// Results served from the cache.
    pub cached: usize,
    /// Error responses, as `(spec index, message)`.
    pub errors: Vec<(usize, String)>,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Client-observed latencies (submit → response), sorted.
    latencies_ms: Vec<f64>,
}

impl BatchReport {
    /// End-to-end throughput.
    #[must_use]
    pub fn specs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.submitted as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// The `q`-th latency quantile in milliseconds (`0.5` = p50,
    /// `0.99` = p99); `None` for an empty batch.
    #[must_use]
    pub fn latency_ms(&self, q: f64) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            return None;
        }
        let rank = ((self.latencies_ms.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies_ms.get(rank).copied()
    }
}

/// Submits every spec in `specs` across `options.connections`
/// connections (round-robin), pipelining up to `options.pipeline`
/// requests per connection, and aggregates the outcome.
///
/// # Errors
///
/// Connection and I/O failures (a *served* error is reported in
/// [`BatchReport::errors`], not here).
pub fn run_batch(addr: &str, specs: &[String], options: &BatchOptions) -> io::Result<BatchReport> {
    let connections = options.connections.clamp(1, specs.len().max(1));
    let pipeline = options.pipeline.max(1);
    let started = Instant::now();
    let mut workers = Vec::with_capacity(connections);
    for c in 0..connections {
        // Round-robin split; indices keep error attribution stable.
        let mine: Vec<(usize, String)> = specs
            .iter()
            .enumerate()
            .skip(c)
            .step_by(connections)
            .map(|(i, s)| (i, s.clone()))
            .collect();
        let addr = addr.to_owned();
        workers.push(std::thread::spawn(move || -> io::Result<BatchReport> {
            let mut client = ServiceClient::connect(addr.as_str())?;
            let mut report = BatchReport::default();
            let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
            let drain = |client: &mut ServiceClient,
                         in_flight: &mut HashMap<u64, (usize, Instant)>,
                         report: &mut BatchReport|
             -> io::Result<()> {
                let response = client.recv()?;
                if let Some((index, sent)) = in_flight.remove(&response.id) {
                    report.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    match response.reply {
                        Ok(_) => {
                            report.ok += 1;
                            if response.cached {
                                report.cached += 1;
                            }
                        }
                        Err(e) => report.errors.push((index, e.to_string())),
                    }
                }
                Ok(())
            };
            for (index, spec) in mine {
                while in_flight.len() >= pipeline {
                    drain(&mut client, &mut in_flight, &mut report)?;
                }
                let id = client.submit(&spec)?;
                in_flight.insert(id, (index, Instant::now()));
                report.submitted += 1;
            }
            while !in_flight.is_empty() {
                drain(&mut client, &mut in_flight, &mut report)?;
            }
            Ok(report)
        }));
    }
    let mut total = BatchReport::default();
    for w in workers {
        let part = w
            .join()
            .map_err(|_| io::Error::other("batch connection thread panicked"))??;
        total.submitted += part.submitted;
        total.ok += part.ok;
        total.cached += part.cached;
        total.errors.extend(part.errors);
        total.latencies_ms.extend(part.latencies_ms);
    }
    total.elapsed = started.elapsed();
    total
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    total.errors.sort_by_key(|(i, _)| *i);
    Ok(total)
}
