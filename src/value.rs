//! The generic text tree behind the spec serialization.
//!
//! [`ExperimentSpec`](crate::ExperimentSpec) serializes through a small
//! self-describing tree of tagged nodes, fields, scalars and lists —
//! whitespace-insensitive, versioned at the document level, with no
//! external dependencies. Grammar:
//!
//! ```text
//! document := "faithful" "/" INT value
//! value    := NUMBER | WORD | STRING | list | node
//! node     := WORD "{" (field ";")* "}"
//! field    := WORD "=" value
//! list     := "[" (value ("," value)*)? "]"
//! ```
//!
//! Numbers print via `{:?}` for reals (which round-trips every finite
//! `f64` exactly) and `{}` for integers, so the reader can tell `2`
//! (integer) from `2.0` (real) and 64-bit seeds survive unharmed.
//! Non-finite reals are not representable; specs are finite by
//! construction.

use std::fmt;

use crate::error::SpecError;

/// Version tag emitted and accepted by this build.
pub const SPEC_VERSION: u32 = 1;

/// One node of the serialization tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A real number (printed with a decimal point or exponent).
    Num(f64),
    /// A non-negative integer.
    Int(u64),
    /// A bare identifier-like word (enum tags, booleans).
    Word(String),
    /// A quoted string (labels, port names).
    Str(String),
    /// An ordered list.
    List(Vec<Value>),
    /// A tagged node with named fields.
    Node(String, Vec<(String, Value)>),
}

impl Value {
    /// Convenience: a `Word` from a `&str`.
    pub fn word(w: impl Into<String>) -> Value {
        Value::Word(w.into())
    }

    /// Convenience: a boolean as the words `true`/`false`.
    pub fn bool(b: bool) -> Value {
        Value::word(if b { "true" } else { "false" })
    }

    fn is_scalar(&self) -> bool {
        matches!(
            self,
            Value::Num(_) | Value::Int(_) | Value::Word(_) | Value::Str(_)
        )
    }

    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        match self {
            Value::Num(v) => write!(f, "{v:?}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Word(w) => write!(f, "{w}"),
            Value::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        '\r' => f.write_str("\\r")?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::List(items) => {
                if items.iter().all(Value::is_scalar) {
                    f.write_str("[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        item.write(f, indent)?;
                    }
                    f.write_str("]")
                } else {
                    f.write_str("[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        writeln!(f)?;
                        write!(f, "{:1$}", "", indent + 2)?;
                        item.write(f, indent + 2)?;
                    }
                    writeln!(f)?;
                    write!(f, "{:1$}]", "", indent)
                }
            }
            Value::Node(tag, fields) => {
                if fields.is_empty() {
                    return write!(f, "{tag}");
                }
                writeln!(f, "{tag} {{")?;
                for (name, value) in fields {
                    write!(f, "{:1$}{name} = ", "", indent + 2)?;
                    value.write(f, indent + 2)?;
                    writeln!(f, ";")?;
                }
                write!(f, "{:1$}}}", "", indent)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, 0)
    }
}

/// Renders a complete, versioned spec document around a workload value.
pub fn render_document(workload: &Value) -> String {
    format!("faithful/{SPEC_VERSION} {workload}\n")
}

/// Parses a complete, versioned spec document.
///
/// # Errors
///
/// [`SpecError`] on lexical or syntactic problems, unsupported
/// versions, or trailing garbage.
pub fn parse_document(text: &str) -> Result<Value, SpecError> {
    let mut p = Parser::new(text);
    p.expect_word("faithful")?;
    p.expect_punct('/')?;
    let version = match p.next_token()? {
        Token::Int(v) => v,
        t => return Err(p.err(format!("expected version number, found {t}"))),
    };
    if version != u64::from(SPEC_VERSION) {
        return Err(p.err(format!(
            "unsupported spec version {version} (this build reads version {SPEC_VERSION})"
        )));
    }
    let value = p.parse_value()?;
    p.expect_end()?;
    Ok(value)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(f64),
    Int(u64),
    Word(String),
    Str(String),
    Punct(char),
    End,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Num(v) => write!(f, "number {v:?}"),
            Token::Int(v) => write!(f, "integer {v}"),
            Token::Word(w) => write!(f, "word {w:?}"),
            Token::Str(s) => write!(f, "string {s:?}"),
            Token::Punct(c) => write!(f, "{c:?}"),
            Token::End => write!(f, "end of input"),
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    /// Byte offset of the most recently lexed token, for error messages.
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            chars: text.char_indices().peekable(),
            at: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        let line = self.text[..self.at.min(self.text.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1;
        SpecError::new(format!("line {line}: {}", message.into()))
    }

    fn skip_ws(&mut self) {
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_whitespace() {
                self.chars.next();
            } else if c == '#' {
                // comment to end of line
                for (_, c) in self.chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, SpecError> {
        self.skip_ws();
        let Some(&(pos, c)) = self.chars.peek() else {
            self.at = self.text.len();
            return Ok(Token::End);
        };
        self.at = pos;
        if c == '"' {
            self.chars.next();
            let mut s = String::new();
            loop {
                match self.chars.next() {
                    Some((_, '"')) => return Ok(Token::Str(s)),
                    Some((_, '\\')) => match self.chars.next() {
                        Some((_, '"')) => s.push('"'),
                        Some((_, '\\')) => s.push('\\'),
                        Some((_, 'n')) => s.push('\n'),
                        Some((_, 't')) => s.push('\t'),
                        Some((_, 'r')) => s.push('\r'),
                        Some((_, other)) => {
                            return Err(self.err(format!("unknown escape \\{other}")))
                        }
                        None => return Err(self.err("unterminated string")),
                    },
                    Some((_, c)) => s.push(c),
                    None => return Err(self.err("unterminated string")),
                }
            }
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut w = String::new();
            while let Some(&(_, c)) = self.chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    w.push(c);
                    self.chars.next();
                } else {
                    break;
                }
            }
            return Ok(Token::Word(w));
        }
        if c.is_ascii_digit() || c == '-' || c == '+' {
            let mut n = String::new();
            n.push(c);
            self.chars.next();
            let mut real = false;
            while let Some(&(_, c)) = self.chars.peek() {
                match c {
                    '0'..='9' => n.push(c),
                    '.' | 'e' | 'E' => {
                        real = true;
                        n.push(c);
                    }
                    // exponent signs: only valid right after e/E, let
                    // f64::from_str be the judge
                    '-' | '+' if n.ends_with(['e', 'E']) => n.push(c),
                    _ => break,
                }
                self.chars.next();
            }
            if !real && !n.starts_with(['-', '+']) {
                if let Ok(v) = n.parse::<u64>() {
                    return Ok(Token::Int(v));
                }
            }
            return n
                .parse::<f64>()
                .map(Token::Num)
                .map_err(|_| self.err(format!("bad number {n:?}")));
        }
        if "{}[]=;,/".contains(c) {
            self.chars.next();
            return Ok(Token::Punct(c));
        }
        Err(self.err(format!("unexpected character {c:?}")))
    }

    fn peek_token(&mut self) -> Result<Token, SpecError> {
        let save = self.chars.clone();
        let save_at = self.at;
        let t = self.next_token()?;
        self.chars = save;
        self.at = save_at;
        Ok(t)
    }

    fn expect_word(&mut self, word: &str) -> Result<(), SpecError> {
        match self.next_token()? {
            Token::Word(w) if w == word => Ok(()),
            t => Err(self.err(format!("expected {word:?}, found {t}"))),
        }
    }

    fn expect_punct(&mut self, p: char) -> Result<(), SpecError> {
        match self.next_token()? {
            Token::Punct(c) if c == p => Ok(()),
            t => Err(self.err(format!("expected {p:?}, found {t}"))),
        }
    }

    fn expect_end(&mut self) -> Result<(), SpecError> {
        match self.next_token()? {
            Token::End => Ok(()),
            t => Err(self.err(format!("trailing input: {t}"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, SpecError> {
        match self.next_token()? {
            Token::Num(v) => Ok(Value::Num(v)),
            Token::Int(v) => Ok(Value::Int(v)),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Word(tag) => {
                if matches!(self.peek_token()?, Token::Punct('{')) {
                    self.next_token()?;
                    let mut fields = Vec::new();
                    loop {
                        match self.next_token()? {
                            Token::Punct('}') => break,
                            Token::Word(name) => {
                                self.expect_punct('=')?;
                                let value = self.parse_value()?;
                                fields.push((name, value));
                                match self.next_token()? {
                                    Token::Punct(';') => {}
                                    Token::Punct('}') => break,
                                    t => {
                                        return Err(
                                            self.err(format!("expected ';' or '}}', found {t}"))
                                        )
                                    }
                                }
                            }
                            t => {
                                return Err(
                                    self.err(format!("expected field name or '}}', found {t}"))
                                )
                            }
                        }
                    }
                    Ok(Value::Node(tag, fields))
                } else {
                    Ok(Value::Word(tag))
                }
            }
            Token::Punct('[') => {
                let mut items = Vec::new();
                if matches!(self.peek_token()?, Token::Punct(']')) {
                    self.next_token()?;
                    return Ok(Value::List(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.next_token()? {
                        Token::Punct(',') => {
                            // allow a trailing comma before ']'
                            if matches!(self.peek_token()?, Token::Punct(']')) {
                                self.next_token()?;
                                break;
                            }
                        }
                        Token::Punct(']') => break,
                        t => return Err(self.err(format!("expected ',' or ']', found {t}"))),
                    }
                }
                Ok(Value::List(items))
            }
            t => Err(self.err(format!("expected a value, found {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let doc = render_document(v);
        let parsed = parse_document(&doc).unwrap_or_else(|e| panic!("{e}\n---\n{doc}"));
        assert_eq!(&parsed, v, "---\n{doc}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Value::Num(1.5));
        roundtrip(&Value::Num(-0.25));
        roundtrip(&Value::Num(1e300));
        roundtrip(&Value::Num(5e-324));
        roundtrip(&Value::Num(f64::MAX));
        roundtrip(&Value::Int(0));
        roundtrip(&Value::Int(u64::MAX));
        roundtrip(&Value::word("zero"));
        roundtrip(&Value::Str("a b\"c\\d\n\te".into()));
        roundtrip(&Value::Str(String::new()));
    }

    #[test]
    fn structures_roundtrip() {
        roundtrip(&Value::List(vec![]));
        roundtrip(&Value::List(vec![Value::Num(1.0), Value::Int(2)]));
        roundtrip(&Value::Node(
            "pulse".into(),
            vec![
                ("at".into(), Value::Num(0.0)),
                ("width".into(), Value::Num(2.5)),
                ("tags".into(), Value::List(vec![Value::word("x")])),
                (
                    "nested".into(),
                    Value::Node("inner".into(), vec![("k".into(), Value::Str("v".into()))]),
                ),
                (
                    "nodes".into(),
                    Value::List(vec![
                        Value::Node("n".into(), vec![("i".into(), Value::Int(1))]),
                        Value::word("bare"),
                    ]),
                ),
            ],
        ));
    }

    #[test]
    fn integer_vs_real_distinction_survives() {
        let doc = render_document(&Value::List(vec![Value::Num(2.0), Value::Int(2)]));
        let Value::List(items) = parse_document(&doc).unwrap() else {
            panic!()
        };
        assert_eq!(items[0], Value::Num(2.0));
        assert_eq!(items[1], Value::Int(2));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let v = parse_document(
            "faithful/1 # header comment\n  pulse {\n  at = 1.0; # mid comment\n width=2.0 }",
        )
        .unwrap();
        assert_eq!(
            v,
            Value::Node(
                "pulse".into(),
                vec![
                    ("at".into(), Value::Num(1.0)),
                    ("width".into(), Value::Num(2.0)),
                ]
            )
        );
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_document("faithful/1 pulse {\n at = ?? }").unwrap_err();
        assert!(err.message().contains("line 2"), "{err}");
        assert!(parse_document("faithful/2 zero").is_err());
        assert!(parse_document("faithful/1 zero zero").is_err());
        assert!(parse_document("faithful/1 \"open").is_err());
        assert!(parse_document("faithful/1 [1, 2").is_err());
        assert!(parse_document("faithful/1 node { a 1 }").is_err());
        assert!(parse_document("nope/1 zero").is_err());
        assert!(parse_document("faithful/1 \"bad\\q\"").is_err());
    }

    #[test]
    fn bare_word_is_empty_node() {
        assert_eq!(
            Value::Node("zero".into(), vec![]).to_string(),
            Value::word("zero").to_string()
        );
        assert_eq!(Value::bool(true), Value::word("true"));
        assert_eq!(Value::bool(false), Value::word("false"));
    }
}
