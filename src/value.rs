//! The generic text tree behind the spec serialization.
//!
//! [`ExperimentSpec`](crate::ExperimentSpec) serializes through a small
//! self-describing tree of tagged nodes, fields, scalars and lists —
//! whitespace-insensitive, versioned at the document level, with no
//! external dependencies. Grammar:
//!
//! ```text
//! document := "faithful" "/" INT value
//! value    := NUMBER | WORD | STRING | list | node
//! node     := WORD "{" (field ";")* "}"
//! field    := WORD "=" value
//! list     := "[" (value ("," value)*)? "]"
//! ```
//!
//! Numbers print via `{:?}` for reals (which round-trips every finite
//! `f64` exactly) and `{}` for integers, so the reader can tell `2`
//! (integer) from `2.0` (real) and 64-bit seeds survive unharmed.
//! Non-finite reals are not representable; specs are finite by
//! construction.
//!
//! Every parsed [`Value`] carries the [`Span`] of its first token, so
//! validation errors raised long after lexing (unknown fields, type
//! mismatches, lint diagnostics) can still point at a line and column.
//! Programmatically built values have no span; equality ignores spans
//! so built and parsed trees compare equal.

use std::fmt;

use crate::error::{Span, SpecError};

/// Version tag emitted and accepted by this build.
pub const SPEC_VERSION: u32 = 1;

/// One node of the serialization tree: a [`ValueKind`] plus the source
/// [`Span`] it was parsed from (if any).
#[derive(Debug, Clone)]
pub struct Value {
    kind: ValueKind,
    span: Option<Span>,
}

/// The shape of a [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValueKind {
    /// A real number (printed with a decimal point or exponent).
    Num(f64),
    /// A non-negative integer.
    Int(u64),
    /// A bare identifier-like word (enum tags, booleans).
    Word(String),
    /// A quoted string (labels, port names).
    Str(String),
    /// An ordered list.
    List(Vec<Value>),
    /// A tagged node with named fields.
    Node(String, Vec<(String, Value)>),
}

/// Spans are provenance, not content: two trees that print the same
/// are equal regardless of where (or whether) they were parsed.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl Value {
    fn spanned(kind: ValueKind, span: Span) -> Value {
        Value {
            kind,
            span: Some(span),
        }
    }

    /// A real number.
    pub fn num(v: f64) -> Value {
        ValueKind::Num(v).into()
    }

    /// An integer.
    pub fn int(v: u64) -> Value {
        ValueKind::Int(v).into()
    }

    /// Convenience: a `Word` from a `&str`.
    pub fn word(w: impl Into<String>) -> Value {
        ValueKind::Word(w.into()).into()
    }

    /// A quoted string.
    pub fn str(s: impl Into<String>) -> Value {
        ValueKind::Str(s.into()).into()
    }

    /// An ordered list.
    pub fn list(items: Vec<Value>) -> Value {
        ValueKind::List(items).into()
    }

    /// A tagged node with named fields.
    pub fn node(tag: impl Into<String>, fields: Vec<(String, Value)>) -> Value {
        ValueKind::Node(tag.into(), fields).into()
    }

    /// Convenience: a boolean as the words `true`/`false`.
    pub fn bool(b: bool) -> Value {
        Value::word(if b { "true" } else { "false" })
    }

    /// The shape of this value.
    pub fn kind(&self) -> &ValueKind {
        &self.kind
    }

    /// Consumes the value, returning its shape.
    pub fn into_kind(self) -> ValueKind {
        self.kind
    }

    /// Where this value was parsed from, if it came from text.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    fn is_scalar(&self) -> bool {
        matches!(
            self.kind,
            ValueKind::Num(_) | ValueKind::Int(_) | ValueKind::Word(_) | ValueKind::Str(_)
        )
    }

    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        match &self.kind {
            ValueKind::Num(v) => write!(f, "{v:?}"),
            ValueKind::Int(v) => write!(f, "{v}"),
            ValueKind::Word(w) => write!(f, "{w}"),
            ValueKind::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        '\r' => f.write_str("\\r")?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            ValueKind::List(items) => {
                if items.iter().all(Value::is_scalar) {
                    f.write_str("[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        item.write(f, indent)?;
                    }
                    f.write_str("]")
                } else {
                    f.write_str("[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        writeln!(f)?;
                        write!(f, "{:1$}", "", indent + 2)?;
                        item.write(f, indent + 2)?;
                    }
                    writeln!(f)?;
                    write!(f, "{:1$}]", "", indent)
                }
            }
            ValueKind::Node(tag, fields) => {
                if fields.is_empty() {
                    return write!(f, "{tag}");
                }
                writeln!(f, "{tag} {{")?;
                for (name, value) in fields {
                    write!(f, "{:1$}{name} = ", "", indent + 2)?;
                    value.write(f, indent + 2)?;
                    writeln!(f, ";")?;
                }
                write!(f, "{:1$}}}", "", indent)
            }
        }
    }
}

impl From<ValueKind> for Value {
    fn from(kind: ValueKind) -> Value {
        Value { kind, span: None }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, 0)
    }
}

/// Renders a complete, versioned spec document around a workload value.
pub fn render_document(workload: &Value) -> String {
    format!("faithful/{SPEC_VERSION} {workload}\n")
}

/// Parses a complete, versioned spec document.
///
/// # Errors
///
/// [`SpecError`] on lexical or syntactic problems, unsupported
/// versions, or trailing garbage.
pub fn parse_document(text: &str) -> Result<Value, SpecError> {
    let mut p = Parser::new(text);
    p.expect_word("faithful")?;
    p.expect_punct('/')?;
    let version = match p.next_token()? {
        Token::Int(v) => v,
        t => return Err(p.err(format!("expected version number, found {t}"))),
    };
    if version != u64::from(SPEC_VERSION) {
        return Err(p.err(format!(
            "unsupported spec version {version} (this build reads version {SPEC_VERSION})"
        )));
    }
    let value = p.parse_value()?;
    p.expect_end()?;
    Ok(value)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(f64),
    Int(u64),
    Word(String),
    Str(String),
    Punct(char),
    End,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Num(v) => write!(f, "number {v:?}"),
            Token::Int(v) => write!(f, "integer {v}"),
            Token::Word(w) => write!(f, "word {w:?}"),
            Token::Str(s) => write!(f, "string {s:?}"),
            Token::Punct(c) => write!(f, "{c:?}"),
            Token::End => write!(f, "end of input"),
        }
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    /// Position of the *next* unread character (1-based).
    line: u32,
    column: u32,
    /// Span of the most recently lexed token, for errors and values.
    span: Span,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            chars: text.char_indices().peekable(),
            line: 1,
            column: 1,
            span: Span { line: 1, column: 1 },
        }
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::new(message).at(self.span)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else if c == '#' {
                // comment to end of line
                while let Some(c) = self.bump() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, SpecError> {
        self.skip_ws();
        self.span = Span {
            line: self.line,
            column: self.column,
        };
        let Some(c) = self.peek() else {
            return Ok(Token::End);
        };
        if c == '"' {
            self.bump();
            let mut s = String::new();
            loop {
                match self.bump() {
                    Some('"') => return Ok(Token::Str(s)),
                    Some('\\') => match self.bump() {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('r') => s.push('\r'),
                        Some(other) => return Err(self.err(format!("unknown escape \\{other}"))),
                        None => return Err(self.err("unterminated string")),
                    },
                    Some(c) => s.push(c),
                    None => return Err(self.err("unterminated string")),
                }
            }
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut w = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    w.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(Token::Word(w));
        }
        if c.is_ascii_digit() || c == '-' || c == '+' {
            let mut n = String::new();
            n.push(c);
            self.bump();
            let mut real = false;
            while let Some(c) = self.peek() {
                match c {
                    '0'..='9' => n.push(c),
                    '.' | 'e' | 'E' => {
                        real = true;
                        n.push(c);
                    }
                    // exponent signs: only valid right after e/E, let
                    // f64::from_str be the judge
                    '-' | '+' if n.ends_with(['e', 'E']) => n.push(c),
                    _ => break,
                }
                self.bump();
            }
            if !real && !n.starts_with(['-', '+']) {
                if let Ok(v) = n.parse::<u64>() {
                    return Ok(Token::Int(v));
                }
            }
            return n
                .parse::<f64>()
                .map(Token::Num)
                .map_err(|_| self.err(format!("bad number {n:?}")));
        }
        if "{}[]=;,/".contains(c) {
            self.bump();
            return Ok(Token::Punct(c));
        }
        Err(self.err(format!("unexpected character {c:?}")))
    }

    fn peek_token(&mut self) -> Result<Token, SpecError> {
        let save_chars = self.chars.clone();
        let (save_line, save_column, save_span) = (self.line, self.column, self.span);
        let t = self.next_token()?;
        self.chars = save_chars;
        self.line = save_line;
        self.column = save_column;
        self.span = save_span;
        Ok(t)
    }

    fn expect_word(&mut self, word: &str) -> Result<(), SpecError> {
        match self.next_token()? {
            Token::Word(w) if w == word => Ok(()),
            t => Err(self.err(format!("expected {word:?}, found {t}"))),
        }
    }

    fn expect_punct(&mut self, p: char) -> Result<(), SpecError> {
        match self.next_token()? {
            Token::Punct(c) if c == p => Ok(()),
            t => Err(self.err(format!("expected {p:?}, found {t}"))),
        }
    }

    fn expect_end(&mut self) -> Result<(), SpecError> {
        match self.next_token()? {
            Token::End => Ok(()),
            t => Err(self.err(format!("trailing input: {t}"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, SpecError> {
        let token = self.next_token()?;
        let span = self.span;
        match token {
            Token::Num(v) => Ok(Value::spanned(ValueKind::Num(v), span)),
            Token::Int(v) => Ok(Value::spanned(ValueKind::Int(v), span)),
            Token::Str(s) => Ok(Value::spanned(ValueKind::Str(s), span)),
            Token::Word(tag) => {
                if matches!(self.peek_token()?, Token::Punct('{')) {
                    self.next_token()?;
                    let mut fields = Vec::new();
                    loop {
                        match self.next_token()? {
                            Token::Punct('}') => break,
                            Token::Word(name) => {
                                self.expect_punct('=')?;
                                let value = self.parse_value()?;
                                fields.push((name, value));
                                match self.next_token()? {
                                    Token::Punct(';') => {}
                                    Token::Punct('}') => break,
                                    t => {
                                        return Err(
                                            self.err(format!("expected ';' or '}}', found {t}"))
                                        )
                                    }
                                }
                            }
                            t => {
                                return Err(
                                    self.err(format!("expected field name or '}}', found {t}"))
                                )
                            }
                        }
                    }
                    Ok(Value::spanned(ValueKind::Node(tag, fields), span))
                } else {
                    Ok(Value::spanned(ValueKind::Word(tag), span))
                }
            }
            Token::Punct('[') => {
                let mut items = Vec::new();
                if matches!(self.peek_token()?, Token::Punct(']')) {
                    self.next_token()?;
                    return Ok(Value::spanned(ValueKind::List(items), span));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.next_token()? {
                        Token::Punct(',') => {
                            // allow a trailing comma before ']'
                            if matches!(self.peek_token()?, Token::Punct(']')) {
                                self.next_token()?;
                                break;
                            }
                        }
                        Token::Punct(']') => break,
                        t => return Err(self.err(format!("expected ',' or ']', found {t}"))),
                    }
                }
                Ok(Value::spanned(ValueKind::List(items), span))
            }
            t => Err(self.err(format!("expected a value, found {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let doc = render_document(v);
        let parsed = parse_document(&doc).unwrap_or_else(|e| panic!("{e}\n---\n{doc}"));
        assert_eq!(&parsed, v, "---\n{doc}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Value::num(1.5));
        roundtrip(&Value::num(-0.25));
        roundtrip(&Value::num(1e300));
        roundtrip(&Value::num(5e-324));
        roundtrip(&Value::num(f64::MAX));
        roundtrip(&Value::int(0));
        roundtrip(&Value::int(u64::MAX));
        roundtrip(&Value::word("zero"));
        roundtrip(&Value::str("a b\"c\\d\n\te"));
        roundtrip(&Value::str(String::new()));
    }

    #[test]
    fn structures_roundtrip() {
        roundtrip(&Value::list(vec![]));
        roundtrip(&Value::list(vec![Value::num(1.0), Value::int(2)]));
        roundtrip(&Value::node(
            "pulse",
            vec![
                ("at".into(), Value::num(0.0)),
                ("width".into(), Value::num(2.5)),
                ("tags".into(), Value::list(vec![Value::word("x")])),
                (
                    "nested".into(),
                    Value::node("inner", vec![("k".into(), Value::str("v"))]),
                ),
                (
                    "nodes".into(),
                    Value::list(vec![
                        Value::node("n", vec![("i".into(), Value::int(1))]),
                        Value::word("bare"),
                    ]),
                ),
            ],
        ));
    }

    #[test]
    fn integer_vs_real_distinction_survives() {
        let doc = render_document(&Value::list(vec![Value::num(2.0), Value::int(2)]));
        let parsed = parse_document(&doc).unwrap();
        let ValueKind::List(items) = parsed.kind() else {
            panic!()
        };
        assert_eq!(items[0], Value::num(2.0));
        assert_eq!(items[1], Value::int(2));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let v = parse_document(
            "faithful/1 # header comment\n  pulse {\n  at = 1.0; # mid comment\n width=2.0 }",
        )
        .unwrap();
        assert_eq!(
            v,
            Value::node(
                "pulse",
                vec![
                    ("at".into(), Value::num(1.0)),
                    ("width".into(), Value::num(2.0)),
                ]
            )
        );
    }

    #[test]
    fn errors_name_line_and_column() {
        let err = parse_document("faithful/1 pulse {\n at = ?? }").unwrap_err();
        let span = err.span().expect("lex errors carry a span");
        assert_eq!((span.line, span.column), (2, 7), "{err}");
        // the rendered form is part of the diagnostic surface — pin it
        assert_eq!(
            err.to_string(),
            "experiment spec error at line 2, column 7: unexpected character '?'"
        );
        assert!(parse_document("faithful/2 zero").is_err());
        assert!(parse_document("faithful/1 zero zero").is_err());
        assert!(parse_document("faithful/1 \"open").is_err());
        assert!(parse_document("faithful/1 [1, 2").is_err());
        assert!(parse_document("faithful/1 node { a 1 }").is_err());
        assert!(parse_document("nope/1 zero").is_err());
        assert!(parse_document("faithful/1 \"bad\\q\"").is_err());
    }

    #[test]
    fn parsed_values_carry_spans() {
        let v = parse_document("faithful/1 pulse {\n  at = 1.0;\n  width = 2.0;\n}").unwrap();
        assert_eq!(
            v.span(),
            Some(Span {
                line: 1,
                column: 12
            })
        );
        let ValueKind::Node(_, fields) = v.kind() else {
            panic!()
        };
        assert_eq!(fields[0].1.span(), Some(Span { line: 2, column: 8 }));
        assert_eq!(
            fields[1].1.span(),
            Some(Span {
                line: 3,
                column: 11
            })
        );
        // built values have no span, but still compare equal to parsed ones
        assert_eq!(Value::num(1.0).span(), None);
        assert_eq!(fields[0].1, Value::num(1.0));
    }

    #[test]
    fn bare_word_is_empty_node() {
        assert_eq!(
            Value::node("zero", vec![]).to_string(),
            Value::word("zero").to_string()
        );
        assert_eq!(Value::bool(true), Value::word("true"));
        assert_eq!(Value::bool(false), Value::word("false"));
    }
}
