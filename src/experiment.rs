//! The spec-driven [`Experiment`] facade: one entry point that
//! dispatches declarative [`ExperimentSpec`]s to the channel algebra,
//! the event-driven digital simulator, the analog characterization
//! pipeline or the SPF theory/circuit layer, behind one typed
//! [`ExperimentResult`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use ivl_analog::chain::InverterChain;
use ivl_analog::characterize::{
    to_empirical, DelaySample, DeviationSample, Integrator, SweepConfig,
};
use ivl_analog::ode::Rk45Options;
use ivl_analog::supply::VddSource;
use ivl_analog::SweepRunner;
use ivl_circuit::generate;
use ivl_circuit::vcd::write_vcd;
use ivl_circuit::{
    Circuit, CircuitBuilder, FaultPlan, GateKind, Scenario, ScenarioFailure, ScenarioRunner,
    SimError, SweepStats, TruthTable,
};
use ivl_core::channel::apply_online;
use ivl_core::delay::{DelayPair, ExpChannel, RationalPair};
use ivl_core::factory::ChannelRegistry;
use ivl_core::noise::{
    ConstantShift, EtaBounds, ExtendingAdversary, TruncatedGaussian, UniformNoise,
    WorstCaseAdversary, ZeroNoise,
};
use ivl_core::{Bit, Edge, Signal};
use ivl_spf::{SpfCircuit, SpfRun, SpfTheory};

use crate::checkpoint;
use crate::error::{CheckpointError, Error, SpecError};
use crate::spec::{
    AnalogSpec, AnalogTask, ChannelSpec, DelaySpec, DigitalSpec, ExperimentSpec, FailurePolicySpec,
    GateKindSpec, IntegratorSpec, NodeSpec, NoiseSpec, Orientation, ReferenceSpec, SpfSpec,
    SpfTask, TopologySpec, WorkloadSpec,
};

/// A ready-to-run experiment: a spec plus the channel registry used to
/// resolve by-name channels.
///
/// ```
/// use faithful::{ChannelSpec, Experiment, ExperimentSpec, SignalSpec};
///
/// # fn main() -> Result<(), faithful::Error> {
/// let spec = ExperimentSpec::channel(
///     ChannelSpec::involution_exp(1.0, 0.5, 0.5),
///     SignalSpec::pulse(0.0, 3.0),
/// );
/// let result = Experiment::new(spec).run()?;
/// let output = &result.channel().expect("channel workload").output;
/// assert_eq!(output.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Experiment {
    spec: ExperimentSpec,
    registry: ChannelRegistry,
    lint: Option<crate::lint::LintConfig>,
    timeout: Option<Duration>,
    fault: Option<FaultPlan>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    resume: Option<checkpoint::CheckpointState>,
}

impl Experiment {
    /// Wraps a spec with the built-in channel registry.
    #[must_use]
    pub fn new(spec: ExperimentSpec) -> Self {
        Experiment {
            spec,
            registry: ChannelRegistry::with_builtins(),
            lint: None,
            timeout: None,
            fault: None,
            checkpoint: None,
            checkpoint_every: 64,
            resume: None,
        }
    }

    /// Resumes a checkpointed digital sweep from its sidecar file: the
    /// experiment is rebuilt from the spec embedded in the checkpoint,
    /// already-completed scenarios are skipped (their persisted signals
    /// and statistics merge back into the result), and checkpointing
    /// continues into the same file. For seeded scenarios the resumed
    /// result is bit-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`Error::Checkpoint`] if the sidecar cannot be read or fails
    /// validation; [`Error::Spec`] if the embedded spec does not parse.
    pub fn resume(path: impl AsRef<Path>) -> Result<Self, Error> {
        let path = path.as_ref();
        let state = checkpoint::read(path)?;
        let spec: ExperimentSpec = state.spec_text.parse()?;
        let mut experiment = Experiment::new(spec);
        experiment.checkpoint = Some(path.to_path_buf());
        experiment.resume = Some(state);
        Ok(experiment)
    }

    /// Parses a serialized spec and wraps it.
    ///
    /// # Errors
    ///
    /// [`Error::Spec`] on parse failure.
    pub fn parse(text: &str) -> Result<Self, Error> {
        Ok(Experiment::new(text.parse::<ExperimentSpec>()?))
    }

    /// Convenience: a channel-application experiment.
    #[must_use]
    pub fn channel(channel: ChannelSpec, input: crate::spec::SignalSpec) -> Self {
        Experiment::new(ExperimentSpec::channel(channel, input))
    }

    /// Convenience: a digital sweep experiment.
    #[must_use]
    pub fn digital(spec: DigitalSpec) -> Self {
        Experiment::new(ExperimentSpec::digital(spec))
    }

    /// Convenience: an analog experiment.
    #[must_use]
    pub fn analog(spec: AnalogSpec) -> Self {
        Experiment::new(ExperimentSpec::analog(spec))
    }

    /// Convenience: an SPF experiment.
    #[must_use]
    pub fn spf(spec: SpfSpec) -> Self {
        Experiment::new(ExperimentSpec::spf(spec))
    }

    /// Replaces the channel registry (to resolve custom channel kinds).
    #[must_use]
    pub fn with_registry(mut self, registry: ChannelRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Arms a per-scenario wall-clock budget for digital sweeps: a
    /// watchdog cancels any scenario still running `timeout` after it
    /// started, failing it with
    /// [`SimError::Cancelled`](ivl_circuit::SimError::Cancelled) under
    /// the spec's failure policy.
    #[must_use]
    pub fn with_scenario_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Installs a deterministic [`FaultPlan`] for digital sweeps (chaos
    /// testing). Fault indices refer to spec scenario order. Takes
    /// precedence over the `IVL_FAULT_SEED` environment knob.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Enables periodic checkpointing of digital sweeps to the sidecar
    /// file at `path` (atomically rewritten after every completed
    /// batch), so an interrupted sweep can be picked up with
    /// [`Experiment::resume`].
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets how many scenarios run between checkpoint writes (default
    /// 64, clamped to ≥ 1). Only meaningful together with
    /// [`with_checkpoint`](Experiment::with_checkpoint).
    #[must_use]
    pub fn with_checkpoint_every(mut self, scenarios: usize) -> Self {
        self.checkpoint_every = scenarios.max(1);
        self
    }

    /// Overrides what the lint pre-flight does with its findings.
    ///
    /// Unset, [`run`](Experiment::run) honours the `IVL_LINT`
    /// environment knob (`off`, `warn`, `deny`) and otherwise denies
    /// specs with `Error`-severity diagnostics.
    #[must_use]
    pub fn with_lint(mut self, mode: crate::lint::LintConfig) -> Self {
        self.lint = Some(mode);
        self
    }

    /// The wrapped spec.
    #[must_use]
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// Lints the wrapped spec against this experiment's channel
    /// registry without running anything (see [`mod@crate::lint`]).
    #[must_use]
    pub fn lint_report(&self) -> crate::lint::LintReport {
        crate::lint::lint(&self.spec, &self.registry)
    }

    /// Runs the experiment, dispatching on the workload kind.
    ///
    /// A static lint pass runs first: specs with `Error`-severity
    /// diagnostics are rejected as [`Error::Lint`] before a single
    /// event is scheduled, unless [`with_lint`](Experiment::with_lint)
    /// or `IVL_LINT` loosen the mode.
    ///
    /// # Errors
    ///
    /// [`Error::Lint`] from the pre-flight, then construction,
    /// validation and simulation errors of the selected layer, unified
    /// into [`Error`].
    pub fn run(&self) -> Result<ExperimentResult, Error> {
        use crate::lint::LintConfig;
        let mode = self
            .lint
            .or_else(LintConfig::from_env)
            .unwrap_or(LintConfig::Deny);
        if mode != LintConfig::Off {
            let report = self.lint_report();
            match mode {
                LintConfig::Deny if report.has_errors() => {
                    return Err(Error::Lint(report));
                }
                LintConfig::Warn if !report.is_clean() => {
                    eprintln!("{report}");
                }
                _ => {}
            }
        }
        match &self.spec.workload {
            WorkloadSpec::Channel(c) => {
                let mut channel = self.registry.build(&c.channel.kind, &c.channel.params)?;
                let input = c.input.build()?;
                let output = apply_online(&mut *channel, &input);
                Ok(ExperimentResult::Channel(ChannelResult { output }))
            }
            WorkloadSpec::Digital(d) => self.run_digital(d),
            WorkloadSpec::Analog(a) => Ok(ExperimentResult::Analog(self.run_analog(a)?)),
            WorkloadSpec::Spf(s) => Ok(ExperimentResult::Spf(run_spf_spec(s)?)),
        }
    }

    /// Builds the circuit described by a digital spec's topology
    /// (useful for inspecting a spec without running it).
    ///
    /// # Errors
    ///
    /// Channel factory and circuit construction errors.
    pub fn build_circuit(&self, topology: &TopologySpec) -> Result<Circuit, Error> {
        match topology {
            TopologySpec::Netlist(n) => {
                let mut b = CircuitBuilder::new();
                let mut ids = std::collections::HashMap::new();
                for node in &n.nodes {
                    match node {
                        NodeSpec::Input { name } => {
                            ids.insert(name.clone(), b.input(name));
                        }
                        NodeSpec::Output { name } => {
                            ids.insert(name.clone(), b.output(name));
                        }
                        NodeSpec::Gate {
                            name,
                            kind,
                            arity,
                            init,
                        } => {
                            let kind = build_gate_kind(kind)?;
                            let init = if *init { Bit::One } else { Bit::Zero };
                            let id = match arity {
                                Some(a) => b.gate_with_arity(name, kind, init, *a as usize),
                                None => b.gate(name, kind, init),
                            };
                            ids.insert(name.clone(), id);
                        }
                    }
                }
                for edge in &n.edges {
                    let from = *ids.get(&edge.from).ok_or_else(|| {
                        SpecError::new(format!("edge references unknown node {:?}", edge.from))
                    })?;
                    let to = *ids.get(&edge.to).ok_or_else(|| {
                        SpecError::new(format!("edge references unknown node {:?}", edge.to))
                    })?;
                    match &edge.channel {
                        None => {
                            b.connect_direct(from, to, edge.pin as usize)?;
                        }
                        Some(c) => {
                            let channel = self.registry.build(&c.kind, &c.params)?;
                            b.connect(from, to, edge.pin as usize, channel)?;
                        }
                    }
                }
                Ok(b.build()?)
            }
            // generator topologies delegate to ivl_circuit::generate;
            // the registry builds one prototype channel (validating the
            // spec's kind and params) and the generator clones it per
            // edge — registry builds are deterministic functions of the
            // params, so a clone is bitwise the same channel
            TopologySpec::InverterChain { stages, channel } => {
                let proto = self.registry.build(&channel.kind, &channel.params)?;
                Ok(generate::inverter_chain(*stages, || proto.clone())?)
            }
            TopologySpec::Grid2d {
                width,
                height,
                channel,
            } => {
                let proto = self.registry.build(&channel.kind, &channel.params)?;
                Ok(generate::grid(*width, *height, || proto.clone())?)
            }
            TopologySpec::RandomDag {
                nodes,
                seed,
                channel,
            } => {
                let proto = self.registry.build(&channel.kind, &channel.params)?;
                Ok(generate::random_dag(*nodes, seed.unwrap_or(0), || {
                    proto.clone()
                })?)
            }
            TopologySpec::FatTree { depth, channel } => {
                let proto = self.registry.build(&channel.kind, &channel.params)?;
                Ok(generate::fat_tree(*depth, || proto.clone())?)
            }
        }
    }

    fn run_digital(&self, d: &DigitalSpec) -> Result<ExperimentResult, Error> {
        let circuit = self.build_circuit(&d.topology)?;
        let output_names: Vec<String> = circuit
            .output_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        // the signals each scenario materializes: output ports first
        // (the historical behaviour, so existing results stay
        // byte-identical), then watched non-port nodes in spec order
        let mut collect_names = output_names;
        for name in &d.outputs.watch {
            if !collect_names.iter().any(|n| n == name) {
                collect_names.push(name.clone());
            }
        }
        let mut runner =
            ScenarioRunner::new(circuit, d.horizon).with_failure_policy(d.on_failure.to_policy());
        if !d.outputs.watch.is_empty() {
            runner = runner.with_watch(&d.outputs.watch).map_err(Error::Sim)?;
        }
        if let Some(w) = d.workers {
            runner = runner.with_workers(w as usize);
        }
        if let Some(m) = d.max_events {
            runner = runner.with_max_events(usize::try_from(m).unwrap_or(usize::MAX));
        }
        if let Some(t) = self.timeout {
            runner = runner.with_scenario_timeout(t);
        }
        let fault = self
            .fault
            .clone()
            .or_else(|| fault_plan_from_env(d.scenarios.len()));

        let total = d.scenarios.len();
        let mut records: Vec<Option<ScenarioRecord>> = Vec::new();
        records.resize_with(total, || None);
        let mut retried: u64 = 0;

        // seed already-completed scenarios from a resume checkpoint
        if let Some(state) = &self.resume {
            if state.total != total {
                return Err(Error::Checkpoint(CheckpointError::new(format!(
                    "checkpoint covers {} scenarios but the spec has {total}",
                    state.total
                ))));
            }
            retried = state.retried;
            for (&index, done) in &state.done {
                records[index] = Some(ScenarioRecord {
                    label: done.label.clone(),
                    signals: done.signals.clone(),
                    processed: done.processed,
                    scheduled: done.scheduled,
                    error: None,
                    retries: 0,
                });
            }
        }

        let pending: Vec<usize> = (0..total).filter(|&i| records[i].is_none()).collect();
        // without a checkpoint sidecar there is nothing to persist
        // between batches, so run everything in one sweep
        let batch_size = if self.checkpoint.is_some() {
            self.checkpoint_every.max(1)
        } else {
            pending.len().max(1)
        };

        for batch in pending.chunks(batch_size) {
            let mut scenarios = Vec::with_capacity(batch.len());
            for &i in batch {
                let s = &d.scenarios[i];
                let mut sc = Scenario::new(s.label.clone());
                if let Some(seed) = s.seed {
                    sc = sc.with_seed(seed);
                }
                for (port, sig) in &s.inputs {
                    sc = sc.with_input(port.clone(), sig.build()?);
                }
                scenarios.push(sc);
            }
            // faults are planned in global scenario indices; remap the
            // slice this batch executes
            if let Some(plan) = &fault {
                let mut local = FaultPlan::new();
                for (pos, &gi) in batch.iter().enumerate() {
                    if let Some((_, kind)) = plan.faults().iter().find(|(fi, _)| *fi == gi) {
                        local = local.with_fault(pos, kind.clone());
                    }
                }
                runner.set_fault_plan(Some(local));
            }
            let sweep = match runner.try_run(&scenarios) {
                Ok(sweep) => sweep,
                Err(mut aborted) => {
                    // report the global index, and persist the completed
                    // batches so resume() can pick the sweep back up
                    // from here (the aborted batch itself re-runs)
                    aborted.failure.index = batch[aborted.failure.index];
                    if let Some(path) = &self.checkpoint {
                        self.write_checkpoint(path, total, retried, &records)?;
                    }
                    return Err(Error::Sweep(aborted));
                }
            };
            retried += sweep.stats().retried;
            for (pos, outcome) in sweep.outcomes().iter().enumerate() {
                let record = match outcome.result() {
                    Ok(run) => {
                        let mut signals = Vec::with_capacity(collect_names.len());
                        for name in &collect_names {
                            signals.push((name.clone(), run.signal(name)?.clone()));
                        }
                        ScenarioRecord {
                            label: outcome.label().to_owned(),
                            signals,
                            processed: run.processed_events() as u64,
                            scheduled: run.scheduled_events() as u64,
                            error: None,
                            retries: 0,
                        }
                    }
                    Err(e) => {
                        let retries = sweep
                            .failures()
                            .iter()
                            .find(|f| f.index == pos)
                            .map_or(0, |f| f.retries);
                        ScenarioRecord {
                            label: outcome.label().to_owned(),
                            signals: Vec::new(),
                            processed: 0,
                            scheduled: 0,
                            error: Some(e.clone()),
                            retries,
                        }
                    }
                };
                records[batch[pos]] = Some(record);
            }
            if let Some(path) = &self.checkpoint {
                self.write_checkpoint(path, total, retried, &records)?;
            }
        }

        // assemble in scenario-index order; statistics are re-aggregated
        // here (rather than taken from per-batch sweeps) so a resumed or
        // batched run is bit-identical to a single uninterrupted sweep
        let mut outcomes = Vec::with_capacity(total);
        let mut failures: Vec<ScenarioFailure> = Vec::new();
        let mut quarantine: Vec<QuarantinedScenario> = Vec::new();
        let mut stats = SweepStats {
            scenarios: total,
            retried,
            ..SweepStats::default()
        };
        for (i, record) in records.into_iter().enumerate() {
            let record = record.expect("every scenario was executed or resumed");
            match record.error {
                None => {
                    stats.processed_events += record.processed;
                    stats.scheduled_events += record.scheduled;
                    for (_, signal) in &record.signals {
                        stats.absorb_signal(signal);
                    }
                    let vcd = if d.outputs.vcd {
                        let pairs: Vec<(&str, &Signal)> = record
                            .signals
                            .iter()
                            .map(|(n, s)| (n.as_str(), s))
                            .collect();
                        Some(write_vcd(&pairs, "1ps", 0.001).map_err(SpecError::new)?)
                    } else {
                        None
                    };
                    let signals = if d.outputs.signals {
                        record.signals
                    } else {
                        Vec::new()
                    };
                    outcomes.push(DigitalOutcome {
                        label: record.label,
                        signals,
                        vcd,
                        error: None,
                    });
                }
                Some(cause) => {
                    stats.failures += 1;
                    failures.push(ScenarioFailure {
                        index: i,
                        label: record.label.clone(),
                        seed: d.scenarios[i].seed,
                        cause: cause.clone(),
                        retries: record.retries,
                    });
                    quarantine.push(QuarantinedScenario {
                        index: i,
                        label: record.label.clone(),
                        spec: quarantine_spec(d, i, &cause),
                    });
                    outcomes.push(DigitalOutcome {
                        label: record.label,
                        signals: Vec::new(),
                        vcd: None,
                        error: Some(cause),
                    });
                }
            }
        }
        write_quarantine_files(&quarantine)?;
        let failed = failures.len();
        let stats_out = d.outputs.stats.then(|| stats.clone());
        Ok(ExperimentResult::Digital(DigitalResult {
            outcomes,
            stats: stats_out,
            completed: total - failed,
            failed,
            retried,
            failures,
            quarantine,
        }))
    }

    fn write_checkpoint(
        &self,
        path: &Path,
        total: usize,
        retried: u64,
        records: &[Option<ScenarioRecord>],
    ) -> Result<(), Error> {
        let mut done = BTreeMap::new();
        for (i, record) in records.iter().enumerate() {
            if let Some(record) = record {
                if record.error.is_none() {
                    done.insert(
                        i,
                        checkpoint::DoneScenario {
                            label: record.label.clone(),
                            processed: record.processed,
                            scheduled: record.scheduled,
                            signals: record.signals.clone(),
                        },
                    );
                }
            }
        }
        let state = checkpoint::CheckpointState {
            spec_text: self.spec.to_string(),
            total,
            retried,
            done,
        };
        checkpoint::write_atomic(path, &state)?;
        Ok(())
    }

    fn run_analog(&self, a: &AnalogSpec) -> Result<AnalogResult, Error> {
        let chain = build_chain(a.chain.stages, a.chain.width_scale)?;
        let vdd = build_supply(&a.supply)?;
        let cfg = build_sweep_config(&a.sweep);
        let mut runner = SweepRunner::new();
        if let Some(w) = a.workers {
            runner = runner.with_workers(w as usize);
        }
        match &a.task {
            AnalogTask::Samples { inverted } => Ok(AnalogResult::Samples(
                runner.sweep_samples(&chain, &vdd, &cfg, *inverted)?,
            )),
            AnalogTask::Characterize => {
                let (up, down) = runner.characterize(&chain, &vdd, &cfg)?;
                Ok(AnalogResult::Characterization { up, down })
            }
            AnalogTask::Deviations {
                reference,
                orientation,
            } => {
                let deviations = match reference {
                    ReferenceSpec::Exp { tau, t_p, v_th } => self.measure(
                        &runner,
                        &chain,
                        &vdd,
                        &cfg,
                        &ExpChannel::new(*tau, *t_p, *v_th)?,
                        *orientation,
                    )?,
                    ReferenceSpec::Rational { a, b, c } => self.measure(
                        &runner,
                        &chain,
                        &vdd,
                        &cfg,
                        &RationalPair::new(*a, *b, *c)?,
                        *orientation,
                    )?,
                    ReferenceSpec::SelfEmpirical => {
                        let nominal_chain = build_chain(a.chain.stages, 1.0)?;
                        let nominal_vdd = VddSource::dc(a.supply.nominal());
                        let (up, down) = runner.characterize(&nominal_chain, &nominal_vdd, &cfg)?;
                        let pair = to_empirical(&up, &down)?;
                        self.measure(&runner, &chain, &vdd, &cfg, &pair, *orientation)?
                    }
                    ReferenceSpec::Empirical { up, down } => {
                        let pair = to_empirical(
                            &raw_samples(up, Edge::Rising),
                            &raw_samples(down, Edge::Falling),
                        )?;
                        self.measure(&runner, &chain, &vdd, &cfg, &pair, *orientation)?
                    }
                };
                Ok(AnalogResult::Deviations(deviations))
            }
        }
    }

    fn measure<D: DelayPair + ?Sized>(
        &self,
        runner: &SweepRunner,
        chain: &InverterChain,
        vdd: &VddSource,
        cfg: &SweepConfig,
        reference: &D,
        orientation: Orientation,
    ) -> Result<Vec<DeviationSample>, Error> {
        let orientations: &[bool] = match orientation {
            Orientation::Both => &[false, true],
            Orientation::Normal => &[false],
            Orientation::Inverted => &[true],
        };
        let mut all = Vec::new();
        for &inverted in orientations {
            all.extend(runner.measure_deviations(chain, vdd, cfg, reference, inverted)?);
        }
        Ok(all)
    }
}

fn build_gate_kind(kind: &GateKindSpec) -> Result<GateKind, Error> {
    Ok(match kind {
        GateKindSpec::Buf => GateKind::Buf,
        GateKindSpec::Not => GateKind::Not,
        GateKindSpec::And => GateKind::And,
        GateKindSpec::Or => GateKind::Or,
        GateKindSpec::Nand => GateKind::Nand,
        GateKindSpec::Nor => GateKind::Nor,
        GateKindSpec::Xor => GateKind::Xor,
        GateKindSpec::Xnor => GateKind::Xnor,
        GateKindSpec::Table { inputs, rows } => {
            let bits: Vec<Bit> = rows
                .iter()
                .map(|b| if *b { Bit::One } else { Bit::Zero })
                .collect();
            let table = TruthTable::new(*inputs as usize, bits).ok_or_else(|| {
                SpecError::new(format!(
                    "truth table needs 2^{inputs} rows, got {}",
                    rows.len()
                ))
            })?;
            GateKind::Table(table)
        }
    })
}

fn build_chain(stages: u32, width_scale: f64) -> Result<InverterChain, Error> {
    let chain = InverterChain::umc90_like(stages as usize)?;
    if width_scale == 1.0 {
        Ok(chain)
    } else {
        Ok(chain.scaled_width(width_scale)?)
    }
}

fn build_supply(s: &crate::spec::SupplySpec) -> Result<VddSource, Error> {
    Ok(match s {
        crate::spec::SupplySpec::Dc { volts } => VddSource::dc(*volts),
        crate::spec::SupplySpec::Sine {
            nominal,
            amplitude,
            period,
            phase,
        } => VddSource::with_sine(*nominal, *amplitude, *period, *phase)?,
    })
}

fn build_sweep_config(s: &crate::spec::SweepSpec) -> SweepConfig {
    SweepConfig {
        widths: s.widths.clone(),
        settle: s.settle,
        tail: s.tail,
        dt: s.dt,
        slew: s.slew,
        stage: s.stage as usize,
        integrator: match s.integrator {
            IntegratorSpec::Rk4 => Integrator::Rk4,
            IntegratorSpec::Rk45 { rtol, atol } => {
                Integrator::Rk45(Rk45Options::with_tolerances(rtol, atol))
            }
        },
    }
}

fn run_spf_spec(s: &SpfSpec) -> Result<SpfResult, Error> {
    let bounds = EtaBounds::new(s.eta_minus, s.eta_plus)?;
    match s.delay {
        DelaySpec::Exp { tau, t_p, v_th } => {
            run_spf(ExpChannel::new(tau, t_p, v_th)?, bounds, &s.task)
        }
        DelaySpec::Rational { a, b, c } => run_spf(RationalPair::new(a, b, c)?, bounds, &s.task),
    }
}

fn run_spf<D: DelayPair + Clone + Send + 'static>(
    delay: D,
    bounds: EtaBounds,
    task: &SpfTask,
) -> Result<SpfResult, Error> {
    let circuit = SpfCircuit::dimensioned(delay, bounds)?;
    let theory = circuit.theory()?;
    let run = match task {
        SpfTask::Theory => None,
        SpfTask::Simulate {
            noise,
            input,
            horizon,
        } => {
            let input = input.build()?;
            Some(simulate_spf(&circuit, *noise, &input, *horizon)?)
        }
    };
    Ok(SpfResult { theory, run })
}

fn simulate_spf<D: DelayPair + Clone + Send + 'static>(
    circuit: &SpfCircuit<D>,
    noise: NoiseSpec,
    input: &Signal,
    horizon: f64,
) -> Result<SpfRun, Error> {
    Ok(match noise {
        NoiseSpec::Zero => circuit.simulate(ZeroNoise, input, horizon)?,
        NoiseSpec::WorstCase => circuit.simulate(WorstCaseAdversary, input, horizon)?,
        NoiseSpec::Extending => circuit.simulate(ExtendingAdversary, input, horizon)?,
        NoiseSpec::Uniform { seed } => circuit.simulate(UniformNoise::new(seed), input, horizon)?,
        NoiseSpec::Gaussian { sigma, seed } => {
            circuit.simulate(TruncatedGaussian::new(sigma, seed)?, input, horizon)?
        }
        NoiseSpec::Constant { shift } => circuit.simulate(ConstantShift(shift), input, horizon)?,
    })
}

/// Rebuilds [`DelaySample`]s from spec-embedded `(offset, delay)`
/// pairs ([`ReferenceSpec::Empirical`]); the edge tags what the samples
/// measured.
fn raw_samples(samples: &[(f64, f64)], edge: Edge) -> Vec<DelaySample> {
    samples
        .iter()
        .map(|&(offset, delay)| DelaySample {
            offset,
            delay,
            edge,
        })
        .collect()
}

/// One scenario's result while a batched/resumable sweep is in flight.
struct ScenarioRecord {
    label: String,
    signals: Vec<(String, Signal)>,
    processed: u64,
    scheduled: u64,
    error: Option<SimError>,
    retries: u32,
}

/// Builds a seeded [`FaultPlan`] from `IVL_FAULT_SEED`, if set.
///
/// This is the CI chaos hook: when the variable holds a `u64`, three
/// distinct scenario indices derived from the seed get a panic, a
/// budget-exhaustion and a stall fault. Unset (the normal case) means
/// no injection.
fn fault_plan_from_env(scenarios: usize) -> Option<FaultPlan> {
    let seed = std::env::var("IVL_FAULT_SEED").ok()?.parse::<u64>().ok()?;
    Some(FaultPlan::seeded(seed, scenarios))
}

/// Repackages scenario `index` of sweep `d` as a standalone replayable
/// spec: same topology, inputs and seed; `workers = 1`; `on_failure =
/// abort`; and — for budget exhaustion — the exceeded budget.
fn quarantine_spec(d: &DigitalSpec, index: usize, cause: &SimError) -> String {
    let mut q = DigitalSpec::new(d.topology.clone(), d.horizon)
        .with_scenario(d.scenarios[index].clone())
        .with_workers(1)
        .with_on_failure(FailurePolicySpec::Abort);
    q.max_events = match cause {
        SimError::MaxEventsExceeded { budget, .. } => {
            Some(u64::try_from(*budget).unwrap_or(u64::MAX))
        }
        _ => d.max_events,
    };
    q.outputs = d.outputs.clone();
    ExperimentSpec::digital(q).to_string()
}

/// Writes each quarantined spec into `IVL_FAULT_QUARANTINE_DIR` (when
/// set) as `quarantine_NNNN_<label>.spec`.
fn write_quarantine_files(quarantine: &[QuarantinedScenario]) -> Result<(), Error> {
    let Some(dir) = std::env::var_os("IVL_FAULT_QUARANTINE_DIR") else {
        return Ok(());
    };
    if quarantine.is_empty() {
        return Ok(());
    }
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).map_err(|e| {
        Error::Checkpoint(CheckpointError::new(e.to_string()).at_path(dir.display().to_string()))
    })?;
    for q in quarantine {
        let label: String = q
            .label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("quarantine_{:04}_{label}.spec", q.index));
        std::fs::write(&path, &q.spec).map_err(|e| {
            Error::Checkpoint(
                CheckpointError::new(e.to_string()).at_path(path.display().to_string()),
            )
        })?;
    }
    Ok(())
}

// ======================================================================
// Results
// ======================================================================

/// The typed result of one experiment, one variant per workload kind.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ExperimentResult {
    /// Result of a channel application.
    Channel(ChannelResult),
    /// Result of a digital sweep.
    Digital(DigitalResult),
    /// Result of an analog experiment.
    Analog(AnalogResult),
    /// Result of an SPF experiment.
    Spf(SpfResult),
}

impl ExperimentResult {
    /// The channel result, if this was a channel workload.
    #[must_use]
    pub fn channel(&self) -> Option<&ChannelResult> {
        match self {
            ExperimentResult::Channel(r) => Some(r),
            _ => None,
        }
    }

    /// The digital result, if this was a digital workload.
    #[must_use]
    pub fn digital(&self) -> Option<&DigitalResult> {
        match self {
            ExperimentResult::Digital(r) => Some(r),
            _ => None,
        }
    }

    /// The analog result, if this was an analog workload.
    #[must_use]
    pub fn analog(&self) -> Option<&AnalogResult> {
        match self {
            ExperimentResult::Analog(r) => Some(r),
            _ => None,
        }
    }

    /// The SPF result, if this was an SPF workload.
    #[must_use]
    pub fn spf(&self) -> Option<&SpfResult> {
        match self {
            ExperimentResult::Spf(r) => Some(r),
            _ => None,
        }
    }
}

/// The output signal of a channel application.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelResult {
    /// The channel's output signal.
    pub output: Signal,
}

/// The outcome of a digital sweep: per-scenario outcomes in input
/// order, plus aggregate statistics when selected.
#[derive(Debug, Clone)]
pub struct DigitalResult {
    /// Per-scenario outcomes, in spec order.
    pub outcomes: Vec<DigitalOutcome>,
    /// Aggregate sweep statistics (when selected).
    pub stats: Option<SweepStats>,
    /// Scenarios that completed successfully (including resumed ones).
    pub completed: usize,
    /// Scenarios that failed after the failure policy was exhausted.
    pub failed: usize,
    /// Retry attempts spent across the whole sweep.
    pub retried: u64,
    /// Typed descriptions of every failed scenario, in index order.
    pub failures: Vec<ScenarioFailure>,
    /// A standalone replayable spec per failed scenario, in index order.
    pub quarantine: Vec<QuarantinedScenario>,
}

impl DigitalResult {
    /// The outcome labelled `label`, if any.
    #[must_use]
    pub fn outcome(&self, label: &str) -> Option<&DigitalOutcome> {
        self.outcomes.iter().find(|o| o.label == label)
    }
}

/// A failed scenario repackaged as a standalone `faithful/1` spec.
///
/// The spec keeps the sweep's topology and the failing scenario's
/// inputs and seed, pins `workers = 1` and `on_failure = abort`, and —
/// for budget exhaustion — carries the exceeded `max_events` budget, so
/// running it reproduces the failure in isolation. When the
/// `IVL_FAULT_QUARANTINE_DIR` environment variable is set, each spec is
/// also written there as `quarantine_NNNN_<label>.spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedScenario {
    /// The scenario's index within the sweep.
    pub index: usize,
    /// The scenario's label.
    pub label: String,
    /// The standalone replayable spec text.
    pub spec: String,
}

/// One scenario's outcome within a digital sweep.
#[derive(Debug, Clone)]
pub struct DigitalOutcome {
    /// The scenario's label.
    pub label: String,
    /// Output-port signals (when selected and the run succeeded).
    pub signals: Vec<(String, Signal)>,
    /// VCD dump of the output ports (when selected).
    pub vcd: Option<String>,
    /// The simulation error, if the scenario failed.
    pub error: Option<SimError>,
}

impl DigitalOutcome {
    /// The signal recorded on output port `name`, if present.
    #[must_use]
    pub fn signal(&self, name: &str) -> Option<&Signal> {
        self.signals.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// `true` if the scenario simulated successfully.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// The output of an analog experiment, shaped by the task.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalogResult {
    /// `(T, δ)` samples of one orientation.
    Samples(Vec<DelaySample>),
    /// Full characterization, split by output edge.
    Characterization {
        /// `δ↑` samples, sorted by offset.
        up: Vec<DelaySample>,
        /// `δ↓` samples, sorted by offset.
        down: Vec<DelaySample>,
    },
    /// Deviations against the reference model.
    Deviations(Vec<DeviationSample>),
}

impl AnalogResult {
    /// The samples, if this was a `Samples` task.
    #[must_use]
    pub fn samples(&self) -> Option<&[DelaySample]> {
        match self {
            AnalogResult::Samples(s) => Some(s),
            _ => None,
        }
    }

    /// The `(δ↑, δ↓)` sample sets, if this was a characterization.
    #[must_use]
    pub fn characterization(&self) -> Option<(&[DelaySample], &[DelaySample])> {
        match self {
            AnalogResult::Characterization { up, down } => Some((up, down)),
            _ => None,
        }
    }

    /// The deviations, if this was a deviation task.
    #[must_use]
    pub fn deviations(&self) -> Option<&[DeviationSample]> {
        match self {
            AnalogResult::Deviations(d) => Some(d),
            _ => None,
        }
    }
}

/// The output of an SPF experiment: the theory bundle, plus the circuit
/// run when simulation was requested.
#[derive(Debug, Clone)]
pub struct SpfResult {
    /// The Section IV theory quantities.
    pub theory: SpfTheory,
    /// The Fig. 5 circuit run (for [`SpfTask::Simulate`]).
    pub run: Option<SpfRun>,
}
