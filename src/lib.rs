//! # faithful — a faithful binary circuit model with adversarial noise
//!
//! Umbrella crate re-exporting the full reproduction of Függer, Maier,
//! Najvirt, Nowak and Schmid, *"A Faithful Binary Circuit Model with
//! Adversarial Noise"*, DATE 2018:
//!
//! * [`core`] — signals, involution delay functions, and channels
//!   (pure / inertial / DDM / involution / η-involution);
//! * [`circuit`] — gates, netlists, and the event-driven simulator;
//! * [`analog`] — the transistor-level analog substrate used as "ground
//!   truth" for the Section V experiments;
//! * [`spf`] — the Short-Pulse Filtration problem, the Fig. 5 circuit,
//!   and the Section IV theory (fixed points, bounds, classification).
//!
//! The recommended entry point is the spec-driven [`Experiment`]
//! facade: describe a workload — a channel application, a digital
//! scenario sweep, an analog characterization, or an SPF instance — as
//! a serializable [`ExperimentSpec`] and let [`Experiment::run`]
//! dispatch it to the right engine behind one typed
//! [`ExperimentResult`] and one [`Error`] type. The [`service`] module
//! (and the `faithful-serve` / `faithful-client` bins) turns that
//! facade into a long-running TCP daemon with an exact,
//! content-addressed result cache.
//!
//! ```
//! use faithful::{ChannelSpec, Experiment, SignalSpec};
//!
//! # fn main() -> Result<(), faithful::Error> {
//! let result = Experiment::channel(
//!     ChannelSpec::involution_exp(1.0, 0.5, 0.5),
//!     SignalSpec::pulse(0.0, 3.0),
//! )
//! .run()?;
//! assert_eq!(result.channel().expect("channel workload").output.len(), 2);
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for a guided tour and `EXPERIMENTS.md` for the
//! paper-figure reproduction index.
#![warn(missing_docs)]

mod atomicio;
mod checkpoint;
mod error;
mod experiment;
pub mod lint;
pub mod service;
mod spec;
mod value;

pub use ivl_analog as analog;
pub use ivl_circuit as circuit;
pub use ivl_core as core;
pub use ivl_spf as spf;

pub use error::{CheckpointError, Error, Span, SpecError};
pub use experiment::{
    AnalogResult, ChannelResult, DigitalOutcome, DigitalResult, Experiment, ExperimentResult,
    QuarantinedScenario, SpfResult,
};
pub use lint::{
    lint, lint_for_service, lint_text, lint_text_for_service, Diagnostic, LintConfig, LintReport,
    Severity,
};
pub use spec::{
    AnalogSpec, AnalogTask, ChainSpec, ChannelRunSpec, ChannelSpec, DelaySpec, DigitalSpec,
    EdgeSpec, ExperimentSpec, FailurePolicySpec, GateKindSpec, IntegratorSpec, NetlistSpec,
    NodeSpec, NoiseSpec, Orientation, OutputSelect, ReferenceSpec, ScenarioSpec, SignalSpec,
    SpfSpec, SpfTask, SupplySpec, SweepSpec, TopologySpec, WorkloadSpec,
};

pub use ivl_circuit::{
    FailurePolicy, FaultKind, FaultPlan, ScenarioFailure, SweepAborted, SweepStats,
};
pub use value::SPEC_VERSION;

pub use ivl_core::{Bit, Edge, Pulse, PulseStats, Signal, SignalBuilder, Transition};
