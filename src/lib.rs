//! # faithful — a faithful binary circuit model with adversarial noise
//!
//! Umbrella crate re-exporting the full reproduction of Függer, Maier,
//! Najvirt, Nowak and Schmid, *"A Faithful Binary Circuit Model with
//! Adversarial Noise"*, DATE 2018:
//!
//! * [`core`] — signals, involution delay functions, and channels
//!   (pure / inertial / DDM / involution / η-involution);
//! * [`circuit`] — gates, netlists, and the event-driven simulator;
//! * [`analog`] — the transistor-level analog substrate used as "ground
//!   truth" for the Section V experiments;
//! * [`spf`] — the Short-Pulse Filtration problem, the Fig. 5 circuit,
//!   and the Section IV theory (fixed points, bounds, classification).
//!
//! See `README.md` for a guided tour and `EXPERIMENTS.md` for the
//! paper-figure reproduction index.

pub use ivl_analog as analog;
pub use ivl_circuit as circuit;
pub use ivl_core as core;
pub use ivl_spf as spf;

pub use ivl_core::{Bit, Edge, Pulse, PulseStats, Signal, SignalBuilder, Transition};
