//! The unified error type of the `faithful` facade.

use std::fmt;

/// A line/column position in a `faithful/1` spec document.
///
/// Both coordinates are 1-based and count characters, not bytes. Spans
/// point at the first token of the construct they describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (characters).
    pub column: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// An error while parsing or validating an [`ExperimentSpec`]
/// serialization.
///
/// Errors raised from parsed text carry the [`Span`] of the offending
/// token; errors from programmatically built specs have none.
///
/// [`ExperimentSpec`]: crate::ExperimentSpec
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    message: String,
    span: Option<Span>,
}

impl SpecError {
    /// Creates a spec error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
            span: None,
        }
    }

    /// Attaches a source location (latest call wins; `None` is a no-op,
    /// so call sites can pass `value.span()` straight through).
    #[must_use]
    pub fn at(mut self, span: impl Into<Option<Span>>) -> Self {
        if let Some(span) = span.into() {
            self.span = Some(span);
        }
        self
    }

    /// The human-readable message, without the location prefix.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the spec text the error points, if known.
    #[must_use]
    pub fn span(&self) -> Option<Span> {
        self.span
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "experiment spec error at {span}: {}", self.message),
            None => write!(f, "experiment spec error: {}", self.message),
        }
    }
}

impl std::error::Error for SpecError {}

/// An error reading, writing or validating a sweep checkpoint sidecar
/// (the resumable-partial-results file behind
/// [`Experiment::resume`](crate::Experiment::resume)).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointError {
    message: String,
    path: Option<String>,
}

impl CheckpointError {
    /// Creates a checkpoint error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        CheckpointError {
            message: message.into(),
            path: None,
        }
    }

    /// Attaches the sidecar path the error refers to.
    #[must_use]
    pub fn at_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// The human-readable message, without the path prefix.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The sidecar path, if known.
    #[must_use]
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(path) => write!(f, "checkpoint error in {path:?}: {}", self.message),
            None => write!(f, "checkpoint error: {}", self.message),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Everything that can go wrong running an experiment through the
/// facade, in one matchable type.
///
/// Every layer's error converts in via `From`, and
/// [`source`](std::error::Error::source) exposes the wrapped error, so
/// callers can either match on the layer or walk the chain:
///
/// ```
/// use faithful::{Error, Experiment, ExperimentSpec, LintConfig};
///
/// // (lint pre-flight off, to reach the layer that owns the failure)
/// let err = "faithful/1 channel { channel = warp {}; input = zero }"
///     .parse::<ExperimentSpec>()
///     .map(|spec| Experiment::new(spec).with_lint(LintConfig::Off).run())
///     .unwrap()
///     .unwrap_err();
/// assert!(matches!(err, Error::Core(_)));
/// assert!(std::error::Error::source(&err).is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A core-model error (signals, delay functions, channel factories).
    Core(ivl_core::Error),
    /// A circuit construction error.
    Circuit(ivl_circuit::CircuitError),
    /// A digital simulation error.
    Sim(ivl_circuit::SimError),
    /// An analog-substrate error.
    Analog(ivl_analog::Error),
    /// An SPF theory or circuit error.
    Spf(ivl_spf::Error),
    /// A spec parse/validation error.
    Spec(SpecError),
    /// A sweep stopped by the `abort` failure policy; carries the
    /// failing scenario's index, label, seed and cause.
    Sweep(ivl_circuit::SweepAborted),
    /// A checkpoint sidecar could not be read, written or validated.
    Checkpoint(CheckpointError),
    /// The lint pre-flight found `Error`-severity diagnostics and the
    /// effective [`LintConfig`](crate::LintConfig) is `Deny`.
    Lint(crate::lint::LintReport),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "core: {e}"),
            Error::Circuit(e) => write!(f, "circuit: {e}"),
            Error::Sim(e) => write!(f, "simulation: {e}"),
            Error::Analog(e) => write!(f, "analog: {e}"),
            Error::Spf(e) => write!(f, "spf: {e}"),
            Error::Spec(e) => write!(f, "{e}"),
            Error::Sweep(e) => write!(f, "{e}"),
            Error::Checkpoint(e) => write!(f, "{e}"),
            Error::Lint(report) => write!(f, "lint rejected the spec:\n{report}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Circuit(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Analog(e) => Some(e),
            Error::Spf(e) => Some(e),
            Error::Spec(e) => Some(e),
            Error::Sweep(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
            Error::Lint(_) => None,
        }
    }
}

impl From<ivl_core::Error> for Error {
    fn from(e: ivl_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<ivl_circuit::CircuitError> for Error {
    fn from(e: ivl_circuit::CircuitError) -> Self {
        Error::Circuit(e)
    }
}

impl From<ivl_circuit::SimError> for Error {
    fn from(e: ivl_circuit::SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<ivl_analog::Error> for Error {
    fn from(e: ivl_analog::Error) -> Self {
        Error::Analog(e)
    }
}

impl From<ivl_spf::Error> for Error {
    fn from(e: ivl_spf::Error) -> Self {
        Error::Spf(e)
    }
}

impl From<SpecError> for Error {
    fn from(e: SpecError) -> Self {
        Error::Spec(e)
    }
}

impl From<ivl_circuit::SweepAborted> for Error {
    fn from(e: ivl_circuit::SweepAborted) -> Self {
        Error::Sweep(e)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Self {
        Error::Checkpoint(e)
    }
}
