//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the proptest 1.x API its test suites use: the
//! [`proptest!`] macro, [`Strategy`] with [`Strategy::prop_map`], range,
//! tuple and same-typed [`prop_oneof!`] strategies, [`collection::vec`],
//! [`prop_assert!`]/
//! [`prop_assert_eq!`]/[`prop_assume!`], and
//! [`test_runner::ProptestConfig`]. Failing cases report their inputs but
//! are **not shrunk**; generation is deterministic per test name so
//! failures reproduce exactly. Replace the `path` dependency with the real
//! crate when a registry is reachable; no test code needs to change.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{Strategy, VecStrategy};

    /// Bounds on the length of a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive); `min + 1` for fixed sizes.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The common imports: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Picks uniformly among same-typed strategy arms (no weights).
///
/// ```
/// use proptest::prelude::*;
///
/// let coin = prop_oneof![Just(false), Just(true)];
/// # let _ = coin;
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

/// Declares property tests. In test code, put `#[test]` on each
/// function inside the macro, exactly as with real proptest.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn it_holds(x in 0.0f64..1.0) { prop_assert!(x < 1.0); }
/// }
/// # it_holds();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(32).max(4096) {
                            panic!(
                                "proptest '{}': too many rejected cases ({} accepted, {} rejected)",
                                stringify!($name), accepted, rejected
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s)\n  inputs: {}\n  {}",
                            stringify!($name), accepted, inputs, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (does not count as a failure) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).into(),
            ));
        }
    };
}
