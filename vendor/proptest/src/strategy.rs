//! Value-generation strategies (subset: no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

use crate::collection::SizeRange;

/// A source of random values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a fresh value from the generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, rejecting the rest.
    ///
    /// The whole test case is rejected when the drawn value fails the
    /// predicate, mirroring proptest's local-rejection behaviour closely
    /// enough for these suites.
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`]. Draws until the
/// predicate holds (bounded retries).
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate rejected 10000 consecutive draws");
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Strategy that picks uniformly among same-typed alternatives, created
/// by [`crate::prop_oneof!`].
///
/// Unlike real proptest the arms must all be the same strategy type
/// (commonly `Just(...)` over an enum) and weights are not supported —
/// enough for the suites in this workspace.
#[derive(Debug, Clone)]
pub struct Union<S>(Vec<S>);

impl<S: Strategy> Union<S> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].new_value(rng)
    }
}

/// Strategy for `Vec`s, created by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.max - self.size.min <= 1 {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
