//! Test-case configuration and outcome types.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; fails the whole test.
    Fail(String),
    /// The case was rejected (e.g. by [`crate::prop_assume!`]); another
    /// case is drawn instead.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic per-test generator: the seed is an FNV-1a hash of the
/// test name (optionally overridden by `PROPTEST_SEED`), so failures
/// reproduce without a persistence file.
#[must_use]
pub fn rng_for_test(name: &str) -> StdRng {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        return StdRng::seed_from_u64(seed);
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}
