//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! tiny API-compatible subset of `rand` 0.8: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over `f64`,
//! integer and `usize` ranges. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic, high-quality, and more than adequate for the
//! simulation/property-testing workloads in this repository. It makes **no
//! reproducibility promise relative to the real `rand` crate**: seeds
//! produce different streams than upstream `StdRng`.
//!
//! Swap this out for the real crate by replacing the `path` dependency once
//! a registry is reachable; no call sites need to change.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface.
pub trait Rng: RngCore {
    /// Samples uniformly from the given range. Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard distribution, for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let x = self.start + unit_f64(rng) * (self.end - self.start);
        // guard against round-up to the excluded endpoint
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection keeps the draw unbiased.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed; not stream-compatible with the
    /// real `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(-0.25f64..0.75);
            assert!((-0.25..0.75).contains(&x));
            let y = r.gen_range(3u64..17);
            assert!((3..17).contains(&y));
            let z = r.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&z));
            let w = r.gen_range(1usize..5);
            assert!((1..5).contains(&w));
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0f64..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0f64..1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = StdRng::seed_from_u64(2018);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
