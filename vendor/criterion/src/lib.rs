//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! straightforward median-of-samples wall-clock timer with automatic
//! per-sample iteration scaling — good enough to spot order-of-magnitude
//! regressions, with none of criterion's statistics, plotting or baseline
//! comparison. Replace the `path` dependency with the real crate when a
//! registry is reachable; no bench code needs to change.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (reported as elements or bytes
/// per second alongside the time per iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine` on inputs produced by `setup`,
    /// excluding setup cost from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation.
    SmallInput,
    /// Large inputs: batch few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    /// `--test` mode (as in real criterion): run every benchmark exactly
    /// once to prove it executes, skip measurement entirely.
    test_mode: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // Far smaller than real criterion: keep `cargo bench` fast.
            sample_size: 12,
            measurement_time: Duration::from_millis(300),
            test_mode: false,
        }
    }
}

/// Runs a single benchmark: scale iteration count so one sample costs
/// roughly `measurement_time / sample_size`, then report the median.
fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    cfg: Config,
    mut f: F,
) {
    // calibration sample
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if cfg.test_mode {
        println!("{id:<48} test: one iteration ok");
        return;
    }
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = cfg.measurement_time / cfg.sample_size as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({:.3e} elem/s)", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  ({:.3e} B/s)", n as f64 / median),
        None => String::new(),
    };
    println!(
        "{id:<48} time: [{} {} {}]{rate}",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Picks up command-line configuration, for parity with the real
    /// crate's `criterion_group!` expansion. Only `--test` is honoured
    /// (compile-and-run-once mode, used by CI); everything else is
    /// ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.cfg.test_mode = true;
        }
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, None, self.cfg, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg,
            throughput: None,
            _parent: self,
        }
    }

    /// Prints the final summary (no-op in this shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing throughput/sizing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.cfg,
            f,
        );
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.cfg,
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
