//! The event-driven simulator must agree exactly with batch channel
//! composition on feed-forward circuits — property-tested over random
//! pipelines and random stimuli.

use faithful::circuit::{CircuitBuilder, GateKind, Simulator};
use faithful::core::channel::{Channel, EtaInvolutionChannel, InvolutionChannel, PureDelay};
use faithful::core::delay::{DelayPair, ExpChannel};
use faithful::core::noise::{EtaBounds, RecordedChoices};
use faithful::{Bit, Signal};
use proptest::prelude::*;

fn arb_signal() -> impl Strategy<Value = Signal> {
    proptest::collection::vec(0.05f64..2.5, 1..16).prop_map(|gaps| {
        let mut t = 0.0;
        let mut times = Vec::new();
        for g in gaps {
            t += g;
            times.push(t);
        }
        Signal::from_times(Bit::Zero, &times).expect("increasing")
    })
}

fn arb_exp() -> impl Strategy<Value = ExpChannel> {
    (0.3f64..2.0, 0.1f64..0.8, 0.25f64..0.75)
        .prop_map(|(tau, tp, vth)| ExpChannel::new(tau, tp, vth).expect("valid"))
}

/// Builds an n-stage inverter pipeline with the given involution delay
/// and runs the stimulus through the event-driven simulator.
fn simulate_pipeline(stages: usize, d: &ExpChannel, input: &Signal, horizon: f64) -> Signal {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    let mut prev_initial = input.initial();
    for i in 0..stages {
        let initial = !prev_initial;
        let g = b.gate(&format!("inv{i}"), GateKind::Not, initial);
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(prev, g, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
        }
        prev = g;
        prev_initial = initial;
    }
    b.connect(prev, y, 0, InvolutionChannel::new(d.clone()))
        .unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    sim.set_input("a", input.clone()).unwrap();
    sim.run(horizon).unwrap().signal("y").unwrap().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_driven_equals_batch_on_pipelines(
        input in arb_signal(),
        d in arb_exp(),
        stages in 1usize..5,
    ) {
        let horizon = 1e6;
        let sim_out = simulate_pipeline(stages, &d, &input, horizon);
        // batch reference: stage 0 has a direct connection, so the first
        // complement happens before any channel; each stage contributes
        // complement + channel, and the output channel closes the chain.
        let mut s = input.clone();
        for _ in 0..stages {
            s = s.complemented();
            // channel between this gate and the next element
            let mut c = InvolutionChannel::new(d.clone());
            s = c.apply(&s);
        }
        prop_assert!(
            sim_out.approx_eq(&s, 1e-9),
            "stages={stages}\nsim:   {sim_out}\nbatch: {s}"
        );
    }

    #[test]
    fn reused_sim_state_matches_fresh_simulator(
        input in arb_signal(),
        d in arb_exp(),
        stages in 1usize..5,
    ) {
        // the simulator rebuilds its per-run state in place; a second and
        // third run on warm buffers must agree *bitwise* with the first
        // run of a freshly constructed simulator
        let horizon = 1e6;
        let build = |stages: usize, d: &ExpChannel, input: &Signal| {
            let mut b = CircuitBuilder::new();
            let a = b.input("a");
            let y = b.output("y");
            let mut prev = a;
            let mut prev_initial = input.initial();
            for i in 0..stages {
                let initial = !prev_initial;
                let g = b.gate(&format!("inv{i}"), GateKind::Not, initial);
                if i == 0 {
                    b.connect_direct(prev, g, 0).unwrap();
                } else {
                    b.connect(prev, g, 0, InvolutionChannel::new(d.clone())).unwrap();
                }
                prev = g;
                prev_initial = initial;
            }
            b.connect(prev, y, 0, InvolutionChannel::new(d.clone())).unwrap();
            let mut sim = Simulator::new(b.build().unwrap());
            sim.set_input("a", input.clone()).unwrap();
            sim
        };
        let mut fresh = build(stages, &d, &input);
        let reference = fresh.run(horizon).unwrap();

        let mut reused = build(stages, &d, &input);
        for round in 0..3 {
            let run = reused.run(horizon).unwrap();
            prop_assert_eq!(
                run.signal("y").unwrap(),
                reference.signal("y").unwrap(),
                "round {} diverged", round
            );
            prop_assert_eq!(run.processed_events(), reference.processed_events());
            prop_assert_eq!(run.scheduled_events(), reference.scheduled_events());
        }
    }

    #[test]
    fn eta_channel_in_circuit_matches_batch_with_same_choices(
        input in arb_signal(),
        d in arb_exp(),
        etas in proptest::collection::vec(-0.02f64..0.02, 32),
    ) {
        // one buffer stage with an η-involution channel driven by a
        // recorded adversary: simulator and batch see identical choices
        let bounds = EtaBounds::new(0.02, 0.02).unwrap();
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(
            g,
            y,
            0,
            EtaInvolutionChannel::new(d.clone(), bounds, RecordedChoices::new(etas.clone())),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", input.clone()).unwrap();
        let sim_out = sim.run(1e6).unwrap().signal("y").unwrap().clone();

        let mut batch =
            EtaInvolutionChannel::new(d, bounds, RecordedChoices::new(etas));
        let want = batch.apply(&input);
        prop_assert!(sim_out.approx_eq(&want, 1e-9), "sim: {sim_out}\nwant: {want}");
    }

    #[test]
    fn fanout_delivers_identical_signals(input in arb_signal(), delay in 0.2f64..2.0) {
        // one driver, two pure-delay branches with equal delay: both
        // outputs must be identical
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y1 = b.output("y1");
        let y2 = b.output("y2");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y1, 0, PureDelay::new(delay).unwrap()).unwrap();
        b.connect(g, y2, 0, PureDelay::new(delay).unwrap()).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", input.clone()).unwrap();
        let run = sim.run(1e6).unwrap();
        prop_assert_eq!(run.signal("y1").unwrap(), run.signal("y2").unwrap());
        prop_assert!(run
            .signal("y1")
            .unwrap()
            .approx_eq(&input.shifted(delay), 1e-12));
    }

    #[test]
    fn xor_cancels_identical_paths(input in arb_signal(), delay in 0.2f64..2.0) {
        // a XOR of two identical delayed copies of one signal is
        // constant 0 — transient-free because the deliveries coincide
        // exactly and the gate evaluates once per batch
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let buf = b.gate("buf", GateKind::Buf, Bit::Zero);
        let xor = b.gate("xor", GateKind::Xor, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, buf, 0).unwrap();
        b.connect(buf, xor, 0, PureDelay::new(delay).unwrap()).unwrap();
        b.connect(buf, xor, 1, PureDelay::new(delay).unwrap()).unwrap();
        b.connect(xor, y, 0, PureDelay::new(0.1).unwrap()).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", input.clone()).unwrap();
        let run = sim.run(1e6).unwrap();
        prop_assert!(run.signal("y").unwrap().is_zero());
    }
}

#[test]
fn or_loop_with_involution_channel_latches_like_theory_says() {
    // smoke test bridging circuit and spf crates at the integration level
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let lock = d.delta_up_inf(); // η = 0 lock bound (Lemma 3)
    let mut b = CircuitBuilder::new();
    let i = b.input("i");
    let or = b.gate("or", GateKind::Or, Bit::Zero);
    let y = b.output("y");
    b.connect_direct(i, or, 0).unwrap();
    b.connect(or, or, 1, InvolutionChannel::new(d.clone()))
        .unwrap();
    b.connect(or, y, 0, PureDelay::new(0.1).unwrap()).unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    sim.set_input("i", Signal::pulse(0.0, lock + 0.1).unwrap())
        .unwrap();
    let run = sim.run(100.0).unwrap();
    let or_sig = run.signal("or").unwrap();
    assert_eq!(or_sig.len(), 1, "{or_sig}");
    assert_eq!(or_sig.final_value(), Bit::One);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zero_time_gates_match_signal_combinators(
        gaps_a in proptest::collection::vec(0.05f64..2.0, 0..12),
        gaps_b in proptest::collection::vec(0.05f64..2.0, 0..12),
    ) {
        // a gate wired directly between ports computes the zero-time
        // Boolean function — exactly what Signal::{and,or,xor} implement
        let to_signal = |gaps: &[f64]| {
            let mut t = 0.0;
            let times: Vec<f64> = gaps.iter().map(|g| { t += g; t }).collect();
            Signal::from_times(Bit::Zero, &times).unwrap()
        };
        let sa = to_signal(&gaps_a);
        let sb = to_signal(&gaps_b);
        for (kind, expect) in [
            (GateKind::And, sa.and(&sb)),
            (GateKind::Or, sa.or(&sb)),
            (GateKind::Xor, sa.xor(&sb)),
        ] {
            let mut b = CircuitBuilder::new();
            let a = b.input("a");
            let bb = b.input("b");
            let g = b.gate("g", kind, Bit::Zero);
            let y = b.output("y");
            b.connect_direct(a, g, 0).unwrap();
            b.connect_direct(bb, g, 1).unwrap();
            b.connect_direct(g, y, 0).unwrap();
            let mut sim = Simulator::new(b.build().unwrap());
            sim.set_input("a", sa.clone()).unwrap();
            sim.set_input("b", sb.clone()).unwrap();
            let run = sim.run(1e9).unwrap();
            prop_assert_eq!(run.signal("y").unwrap(), &expect);
        }
    }
}

#[test]
fn simulator_runs_are_deterministic_with_seeded_adversaries() {
    // two identical simulators with identical seeds must produce
    // bit-identical results — determinism is what makes adversarial
    // counterexamples reproducible
    use faithful::core::noise::UniformNoise;
    let build = || {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let bounds = EtaBounds::new(0.02, 0.02).unwrap();
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(
            or,
            or,
            1,
            EtaInvolutionChannel::new(d.clone(), bounds, UniformNoise::new(11)),
        )
        .unwrap();
        b.connect(or, y, 0, InvolutionChannel::new(d)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("i", Signal::pulse(0.0, 1.18).unwrap())
            .unwrap();
        sim
    };
    let a = build().run(300.0).unwrap();
    let b = build().run(300.0).unwrap();
    assert_eq!(a.signal("or").unwrap(), b.signal("or").unwrap());
    assert_eq!(a.signal("y").unwrap(), b.signal("y").unwrap());
    assert_eq!(a.processed_events(), b.processed_events());
}
