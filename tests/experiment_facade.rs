//! Golden equivalence tests: the `Experiment` facade must reproduce
//! the legacy per-crate entry points **bit-identically** — same
//! `Signal`s, same crossings, same samples — including seeded-noise
//! determinism across worker counts.

use faithful::analog::chain::InverterChain;
use faithful::analog::characterize::SweepConfig;
use faithful::analog::supply::VddSource;
use faithful::analog::SweepRunner;
use faithful::circuit::{CircuitBuilder, GateKind, Scenario, ScenarioRunner};
use faithful::core::channel::{Channel, EtaInvolutionChannel, InvolutionChannel};
use faithful::core::delay::ExpChannel;
use faithful::core::noise::{EtaBounds, UniformNoise, WorstCaseAdversary};
use faithful::spf::SpfCircuit;
use faithful::{
    AnalogSpec, AnalogTask, ChainSpec, ChannelSpec, DelaySpec, DigitalSpec, Experiment,
    ExperimentSpec, GateKindSpec, NetlistSpec, NoiseSpec, Orientation, OutputSelect, ReferenceSpec,
    ScenarioSpec, SignalSpec, SpfSpec, SpfTask, SweepSpec, TopologySpec,
};
use faithful::{Bit, Signal};

const TAU: f64 = 1.0;
const T_P: f64 = 0.5;
const V_TH: f64 = 0.5;
const ETA: f64 = 0.02;

/// The legacy hand-built noisy inverter chain of `examples/scenario_sweep`.
fn legacy_chain_circuit(stages: u32) -> faithful::circuit::Circuit {
    let delay = ExpChannel::new(TAU, T_P, V_TH).unwrap();
    let bounds = EtaBounds::new(ETA, ETA).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let init = if i % 2 == 0 { Bit::One } else { Bit::Zero };
        let g = b.gate(&format!("inv{i}"), GateKind::Not, init);
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(
                prev,
                g,
                0,
                EtaInvolutionChannel::new(delay.clone(), bounds, UniformNoise::new(0)),
            )
            .unwrap();
        }
        prev = g;
    }
    b.connect(
        prev,
        y,
        0,
        EtaInvolutionChannel::new(delay, bounds, UniformNoise::new(0)),
    )
    .unwrap();
    b.build().unwrap()
}

fn chain_channel_spec() -> ChannelSpec {
    ChannelSpec::eta_exp(TAU, T_P, V_TH, ETA, ETA, NoiseSpec::Uniform { seed: 0 })
}

fn digital_spec(stages: u32, scenarios: usize, workers: u32) -> DigitalSpec {
    let mut d = DigitalSpec::new(
        TopologySpec::InverterChain {
            stages,
            channel: chain_channel_spec(),
        },
        100.0,
    )
    .with_workers(workers);
    for seed in 0..scenarios as u64 {
        d = d.with_scenario(
            ScenarioSpec::new(format!("draw{seed}"))
                .with_seed(seed)
                .with_input("a", SignalSpec::pulse(1.0, 6.0)),
        );
    }
    d
}

#[test]
fn digital_facade_matches_legacy_runner_bit_identically() {
    let stages = 6;
    let scenarios: Vec<Scenario> = (0..16u64)
        .map(|seed| {
            Scenario::new(format!("draw{seed}"))
                .with_input("a", Signal::pulse(1.0, 6.0).unwrap())
                .with_seed(seed)
        })
        .collect();
    let legacy = ScenarioRunner::new(legacy_chain_circuit(stages), 100.0)
        .with_workers(2)
        .run(&scenarios);

    let result = Experiment::digital(digital_spec(stages, 16, 2))
        .run()
        .unwrap();
    let digital = result.digital().expect("digital workload");

    assert_eq!(digital.outcomes.len(), legacy.len());
    for (facade, reference) in digital.outcomes.iter().zip(legacy.outcomes()) {
        assert_eq!(facade.label, reference.label());
        assert!(facade.is_ok());
        let legacy_y = reference.result().as_ref().unwrap().signal("y").unwrap();
        assert_eq!(
            facade.signal("y").unwrap(),
            legacy_y,
            "facade output must be bit-identical for {}",
            facade.label
        );
    }
    assert_eq!(digital.stats.as_ref().unwrap(), legacy.stats());
}

#[test]
fn digital_facade_is_deterministic_across_worker_counts() {
    let reference = Experiment::digital(digital_spec(6, 12, 1)).run().unwrap();
    let reference = reference.digital().unwrap();
    for workers in [2, 4] {
        let run = Experiment::digital(digital_spec(6, 12, workers))
            .run()
            .unwrap();
        let run = run.digital().unwrap();
        for (a, b) in reference.outcomes.iter().zip(&run.outcomes) {
            assert_eq!(
                a.signal("y").unwrap(),
                b.signal("y").unwrap(),
                "workers={workers} label={}",
                a.label
            );
        }
        assert_eq!(reference.stats, run.stats, "workers={workers}");
    }
}

#[test]
fn digital_facade_runs_from_serialized_spec_text() {
    let spec = ExperimentSpec::digital(digital_spec(5, 6, 2));
    let text = spec.to_string();
    let from_text = Experiment::parse(&text).unwrap().run().unwrap();
    let direct = Experiment::digital(digital_spec(5, 6, 2)).run().unwrap();
    let (a, b) = (from_text.digital().unwrap(), direct.digital().unwrap());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.signal("y"), y.signal("y"));
    }
    assert_eq!(a.stats, b.stats);
}

#[test]
fn netlist_topology_matches_hand_built_circuit() {
    // y = not(a) through a pure delay, plus a direct wire-through w = a
    let netlist = NetlistSpec::new()
        .input("a")
        .gate("inv", GateKindSpec::Not, true)
        .output("y")
        .output("w")
        .wire("a", "inv", 0)
        .channel("inv", "y", 0, ChannelSpec::pure(1.0))
        .wire("a", "w", 0);
    let spec = DigitalSpec::new(TopologySpec::Netlist(netlist), 50.0)
        .with_scenario(ScenarioSpec::new("p").with_input("a", SignalSpec::pulse(0.0, 2.0)));
    let result = Experiment::digital(spec).run().unwrap();
    let outcome = &result.digital().unwrap().outcomes[0];

    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let inv = b.gate("inv", GateKind::Not, Bit::One);
    let y = b.output("y");
    let w = b.output("w");
    b.connect_direct(a, inv, 0).unwrap();
    b.connect(
        inv,
        y,
        0,
        faithful::core::channel::PureDelay::new(1.0).unwrap(),
    )
    .unwrap();
    b.connect_direct(a, w, 0).unwrap();
    let mut sim = faithful::circuit::Simulator::new(b.build().unwrap());
    sim.set_input("a", Signal::pulse(0.0, 2.0).unwrap())
        .unwrap();
    let legacy = sim.run(50.0).unwrap();

    assert_eq!(outcome.signal("y").unwrap(), legacy.signal("y").unwrap());
    assert_eq!(outcome.signal("w").unwrap(), legacy.signal("w").unwrap());
}

#[test]
fn digital_output_selection_controls_materialization() {
    let spec = digital_spec(4, 2, 1).with_outputs(OutputSelect {
        signals: false,
        stats: false,
        vcd: true,
        watch: Vec::new(),
    });
    let result = Experiment::digital(spec).run().unwrap();
    let digital = result.digital().unwrap();
    assert!(digital.stats.is_none());
    for o in &digital.outcomes {
        assert!(o.signals.is_empty());
        let vcd = o.vcd.as_ref().expect("vcd requested");
        assert!(vcd.contains("$var wire 1"), "{vcd}");
        assert!(vcd.contains("$timescale 1ps"), "{vcd}");
    }
}

#[test]
fn per_scenario_failures_surface_in_outcomes() {
    let spec = DigitalSpec::new(
        TopologySpec::InverterChain {
            stages: 2,
            channel: chain_channel_spec(),
        },
        50.0,
    )
    .with_scenario(ScenarioSpec::new("ok").with_input("a", SignalSpec::pulse(0.0, 4.0)))
    .with_scenario(ScenarioSpec::new("bad").with_input("nope", SignalSpec::pulse(0.0, 4.0)));
    // the lint pre-flight would reject the unknown port statically; this
    // test is about the runtime per-scenario failure path
    let result = Experiment::digital(spec)
        .with_lint(faithful::LintConfig::Off)
        .run()
        .unwrap();
    let digital = result.digital().unwrap();
    assert!(digital.outcomes[0].is_ok());
    assert!(!digital.outcomes[1].is_ok());
    assert!(matches!(
        digital.outcomes[1].error,
        Some(faithful::circuit::SimError::UnknownPort { .. })
    ));
    assert_eq!(digital.stats.as_ref().unwrap().failures, 1);
    assert_eq!(digital.outcome("ok").unwrap().label, "ok");
}

fn fast_sweep() -> SweepSpec {
    SweepSpec::default().with_widths((0..8).map(|i| 20.0 + 12.0 * f64::from(i)))
}

fn fast_config() -> SweepConfig {
    SweepConfig {
        widths: (0..8).map(|i| 20.0 + 12.0 * f64::from(i)).collect(),
        ..SweepConfig::default()
    }
}

#[test]
fn analog_characterize_matches_legacy_sweep_runner_bit_identically() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let (up_legacy, down_legacy) = SweepRunner::new()
        .with_workers(2)
        .characterize(&chain, &vdd, &fast_config())
        .unwrap();

    let result = Experiment::analog(
        AnalogSpec::new(7, AnalogTask::Characterize)
            .with_sweep(fast_sweep())
            .with_workers(2),
    )
    .run()
    .unwrap();
    let (up, down) = result.analog().unwrap().characterization().unwrap();
    assert_eq!(up, &up_legacy[..]);
    assert_eq!(down, &down_legacy[..]);
}

#[test]
fn analog_facade_is_deterministic_across_worker_counts() {
    let run = |workers: u32| {
        let result = Experiment::analog(
            AnalogSpec::new(7, AnalogTask::Samples { inverted: false })
                .with_sweep(fast_sweep())
                .with_workers(workers),
        )
        .run()
        .unwrap();
        let samples = result.analog().unwrap().samples().unwrap().to_vec();
        samples
    };
    let reference = run(1);
    for workers in [2, 4] {
        assert_eq!(reference, run(workers), "workers={workers}");
    }
}

#[test]
fn analog_self_empirical_deviations_match_legacy_pipeline() {
    // Legacy Figs. 8b procedure: characterize the nominal chain, build
    // the empirical reference, measure a width-scaled chain.
    let nominal = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let cfg = fast_config();
    let runner = SweepRunner::new().with_workers(2);
    let (up, down) = runner.characterize(&nominal, &vdd, &cfg).unwrap();
    let reference = faithful::analog::characterize::to_empirical(&up, &down).unwrap();
    let varied = nominal.scaled_width(1.1).unwrap();
    let mut legacy = Vec::new();
    for inverted in [false, true] {
        legacy.extend(
            runner
                .measure_deviations(&varied, &vdd, &cfg, &reference, inverted)
                .unwrap(),
        );
    }

    let result = Experiment::analog(
        AnalogSpec::new(
            7,
            AnalogTask::Deviations {
                reference: ReferenceSpec::SelfEmpirical,
                orientation: Orientation::Both,
            },
        )
        .with_chain(ChainSpec::umc90(7).with_width_scale(1.1))
        .with_sweep(fast_sweep())
        .with_workers(2),
    )
    .run()
    .unwrap();
    let deviations = result.analog().unwrap().deviations().unwrap();
    assert_eq!(deviations, &legacy[..]);
    // the wider chain is faster: the paper's one-sided negative cloud
    let mean = deviations.iter().map(|d| d.deviation).sum::<f64>() / deviations.len() as f64;
    assert!(mean < -0.1, "mean deviation {mean}");
}

#[test]
fn analog_embedded_empirical_reference_matches_self_empirical() {
    // One characterization, embedded as data, must predict exactly what
    // SelfEmpirical re-measures — and round-trip through text.
    let characterization =
        Experiment::analog(AnalogSpec::new(7, AnalogTask::Characterize).with_sweep(fast_sweep()))
            .run()
            .unwrap();
    let (up, down) = characterization
        .analog()
        .unwrap()
        .characterization()
        .unwrap();
    let spec = |reference: ReferenceSpec| {
        ExperimentSpec::analog(
            AnalogSpec::new(
                7,
                AnalogTask::Deviations {
                    reference,
                    orientation: Orientation::Both,
                },
            )
            .with_chain(ChainSpec::umc90(7).with_width_scale(1.1))
            .with_sweep(fast_sweep()),
        )
    };
    let embedded = spec(ReferenceSpec::empirical(up, down));
    let via_text = Experiment::parse(&embedded.to_string())
        .unwrap()
        .run()
        .unwrap();
    let direct = Experiment::new(spec(ReferenceSpec::SelfEmpirical))
        .run()
        .unwrap();
    assert_eq!(
        via_text.analog().unwrap().deviations().unwrap(),
        direct.analog().unwrap().deviations().unwrap(),
        "embedded reference (through text) must equal the re-measured one"
    );
}

#[test]
fn channel_facade_matches_direct_application() {
    let input = Signal::pulse_train([(0.0, 4.0), (7.0, 0.62)]).unwrap();
    let result = Experiment::channel(
        ChannelSpec::involution_exp(TAU, T_P, V_TH),
        SignalSpec::train([(0.0, 4.0), (7.0, 0.62)]),
    )
    .run()
    .unwrap();
    let mut direct = InvolutionChannel::new(ExpChannel::new(TAU, T_P, V_TH).unwrap());
    assert_eq!(result.channel().unwrap().output, direct.apply(&input));
}

#[test]
fn spf_facade_matches_direct_circuit() {
    let delay = ExpChannel::new(TAU, T_P, V_TH).unwrap();
    let bounds = EtaBounds::new(ETA, ETA).unwrap();
    let circuit = SpfCircuit::dimensioned(delay, bounds).unwrap();
    let theory = circuit.theory().unwrap();
    let input = Signal::pulse(0.0, theory.delta0_tilde + 0.05).unwrap();
    let legacy = circuit.simulate(WorstCaseAdversary, &input, 400.0).unwrap();

    let spec = SpfSpec::exp(TAU, T_P, V_TH, ETA, ETA).with_task(SpfTask::Simulate {
        noise: NoiseSpec::WorstCase,
        input: SignalSpec::pulse(0.0, theory.delta0_tilde + 0.05),
        horizon: 400.0,
    });
    let result = Experiment::spf(spec).run().unwrap();
    let spf = result.spf().unwrap();
    assert_eq!(spf.theory, theory);
    let run = spf.run.as_ref().expect("simulation requested");
    assert_eq!(run.or_signal, legacy.or_signal);
    assert_eq!(run.feedback_signal, legacy.feedback_signal);
    assert_eq!(run.output, legacy.output);
    assert_eq!(run.events, legacy.events);

    // delay specs dispatch to the rational family too
    let rational = Experiment::spf(SpfSpec {
        delay: DelaySpec::Rational {
            a: 2.0,
            b: 1.0,
            c: 1.0,
        },
        eta_minus: 0.01,
        eta_plus: 0.01,
        task: SpfTask::Theory,
    })
    .run()
    .unwrap();
    assert!(rational.spf().unwrap().theory.gamma < 1.0);
}

#[test]
fn facade_errors_unify_layer_errors() {
    // every case here is also caught statically by the lint pre-flight
    // (as Error::Lint); switch it off to exercise the layers themselves
    let off = faithful::LintConfig::Off;
    // unknown channel kind -> core error
    let err = Experiment::channel(ChannelSpec::new("warp"), SignalSpec::Zero)
        .with_lint(off)
        .run()
        .unwrap_err();
    assert!(matches!(err, faithful::Error::Core(_)));
    // dangling netlist edge -> spec error
    let netlist = NetlistSpec::new().input("a").wire("a", "ghost", 0);
    let err = Experiment::digital(DigitalSpec::new(TopologySpec::Netlist(netlist), 10.0))
        .with_lint(off)
        .run()
        .unwrap_err();
    assert!(matches!(err, faithful::Error::Spec(_)), "{err:?}");
    // unconnected output -> circuit error
    let netlist = NetlistSpec::new().input("a").output("y");
    let err = Experiment::digital(DigitalSpec::new(TopologySpec::Netlist(netlist), 10.0))
        .with_lint(off)
        .run()
        .unwrap_err();
    assert!(matches!(err, faithful::Error::Circuit(_)), "{err:?}");
    // constraint (C) violation -> spf error, with a source chain
    let err = Experiment::spf(SpfSpec::exp(TAU, T_P, V_TH, 0.4, 0.4))
        .with_lint(off)
        .run()
        .unwrap_err();
    assert!(matches!(err, faithful::Error::Spf(_)), "{err:?}");
    assert!(std::error::Error::source(&err).is_some());
    assert!(!err.to_string().is_empty());
}

#[test]
fn sweep_and_checkpoint_errors_display_and_chain() {
    use std::error::Error as StdError;

    // abort policy -> Error::Sweep, with the failing scenario's index,
    // seed and cause preserved through the chain
    let spec = digital_spec(4, 6, 2).with_on_failure(faithful::FailurePolicySpec::Abort);
    let err = Experiment::digital(spec)
        .with_fault_plan(faithful::FaultPlan::new().with_fault(3, faithful::FaultKind::Panic))
        .run()
        .unwrap_err();
    let faithful::Error::Sweep(ref aborted) = err else {
        panic!("expected Error::Sweep, got {err:?}");
    };
    assert_eq!(aborted.failure.index, 3);
    assert_eq!(aborted.failure.seed, Some(3));
    let text = err.to_string();
    assert!(text.contains("sweep aborted"), "{text}");
    assert!(text.contains("scenario 3"), "{text}");
    assert!(text.contains("seed 3"), "{text}");
    // Error -> SweepAborted -> ScenarioFailure -> SimError
    let aborted = StdError::source(&err).expect("Sweep has a source");
    let failure = aborted.source().expect("SweepAborted has a source");
    assert!(failure.to_string().contains("seed 3"), "{failure}");
    let cause = failure.source().expect("ScenarioFailure has a source");
    assert!(cause.to_string().contains("panicked"), "{cause}");

    // unreadable sidecar -> Error::Checkpoint, carrying the path
    let missing =
        std::env::temp_dir().join(format!("faithful_no_such_{}.spec", std::process::id()));
    let err = Experiment::resume(&missing).unwrap_err();
    let faithful::Error::Checkpoint(ref ck) = err else {
        panic!("expected Error::Checkpoint, got {err:?}");
    };
    assert_eq!(ck.path(), Some(missing.display().to_string().as_str()));
    assert!(err.to_string().contains("checkpoint error"), "{err}");
    assert!(StdError::source(&err).is_some());
}
