//! Adaptive-integrator validation: the Dormand–Prince RK45 pipeline
//! must agree with fine-step RK4 on analytic systems and on the
//! transistor-level chain, and its dense-output crossing times must
//! match bisection-refined RK4 traces to better than 1e-6 ps.

use faithful::analog::chain::InverterChain;
use faithful::analog::characterize::{Integrator, SweepConfig};
use faithful::analog::ode::{rk4, rk45, Rk45Options};
use faithful::analog::stimulus::Pulse;
use faithful::analog::supply::VddSource;
use faithful::analog::{SweepRunner, Waveform};
use proptest::prelude::*;

/// Bisection on a sampled trace's linear interpolant: refines the
/// crossing inside the first sample interval that brackets `threshold`
/// in the requested direction.
fn bisect_crossing(w: &Waveform, threshold: f64, rising: bool) -> Option<f64> {
    let s = w.samples();
    let (mut lo, mut hi) = (0..s.len() - 1)
        .map(|i| (w.t0() + i as f64 * w.dt(), w.t0() + (i + 1) as f64 * w.dt()))
        .zip(s.windows(2))
        .find_map(|((a, b), vs)| {
            let crossed = if rising {
                vs[0] < threshold && vs[1] >= threshold
            } else {
                vs[0] > threshold && vs[1] <= threshold
            };
            crossed.then_some((a, b))
        })?;
    let g_lo = w.value_at(lo) - threshold;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let g_mid = w.value_at(mid) - threshold;
        if (g_mid >= 0.0) == (g_lo >= 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rk45_matches_fine_rk4_on_exponential_decay(
        rate in 0.2f64..3.0,
        t_end in 1.0f64..5.0,
    ) {
        let f = |_t: f64, y: &[f64], dy: &mut [f64]| dy[0] = -rate * y[0];
        let steps = (t_end / 1e-4).ceil() as usize;
        let reference = rk4(0.0, &[1.0], t_end / steps as f64, steps, f)
            .last()
            .unwrap()[0];
        let (y, stats) = rk45(
            0.0,
            t_end,
            &[1.0],
            &Rk45Options::default(),
            f,
            |_s| {},
        )
        .unwrap();
        prop_assert!((y[0] - reference).abs() < 1e-6, "{} vs {reference}", y[0]);
        // adaptive must be far cheaper than the fine reference
        prop_assert!(stats.accepted + stats.rejected < steps / 10);
    }

    #[test]
    fn rk45_matches_fine_rk4_on_harmonic_oscillator(
        omega in 0.3f64..3.0,
        t_end in 2.0f64..10.0,
    ) {
        let f = |_t: f64, y: &[f64], dy: &mut [f64]| {
            dy[0] = y[1];
            dy[1] = -omega * omega * y[0];
        };
        let steps = (t_end / 1e-4).ceil() as usize;
        let reference = rk4(0.0, &[1.0, 0.0], t_end / steps as f64, steps, f);
        let reference = reference.last().unwrap();
        let (y, _) = rk45(0.0, t_end, &[1.0, 0.0], &Rk45Options::default(), f, |_s| {}).unwrap();
        prop_assert!((y[0] - reference[0]).abs() < 1e-5, "{} vs {}", y[0], reference[0]);
        prop_assert!((y[1] - reference[1]).abs() < 1e-5, "{} vs {}", y[1], reference[1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn rk45_crossings_match_rk4_on_a_3stage_chain(
        width in 30.0f64..110.0,
        vdd_level in 0.8f64..1.2,
    ) {
        let chain = InverterChain::umc90_like(3).unwrap();
        let vdd = VddSource::dc(vdd_level);
        let stim = Pulse::new(25.0, width, 8.0, vdd_level).unwrap();
        let t_end = 25.0 + width + 140.0;
        let thr = vdd_level / 2.0;
        let run = chain.simulate(&stim, &vdd, t_end, 0.01).unwrap();
        // tight tolerances: near-threshold supplies make the α-power
        // turn-on kink a real error source at the default setting
        let fast = chain
            .simulate_crossings(&stim, &vdd, t_end, thr, &Rk45Options::with_tolerances(1e-9, 1e-12))
            .unwrap();
        for i in 0..3 {
            let w = run.node(i);
            let mut dense: Vec<f64> = w
                .rising_crossings(thr)
                .into_iter()
                .chain(w.falling_crossings(thr))
                .collect();
            dense.sort_by(|a, b| a.total_cmp(b));
            let fast_times: Vec<f64> =
                fast.node(i).transitions().iter().map(|t| t.time).collect();
            prop_assert_eq!(fast_times.len(), dense.len(), "node {}", i);
            for (a, b) in fast_times.iter().zip(&dense) {
                prop_assert!((a - b).abs() < 1e-3, "node {}: {} vs {}", i, a, b);
            }
        }
    }
}

/// The acceptance bar of this pipeline: at tight tolerances, the
/// crossings-only fast path agrees with bisection on a very fine RK4
/// trace of the nominal 7-stage chain to better than 1e-6 ps on every
/// transition of every node.
#[test]
fn tight_rk45_crossings_match_rk4_bisection_to_1e6() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let stim = Pulse::new(60.0, 80.0, 10.0, 1.0).unwrap();
    let run = chain.simulate(&stim, &vdd, 400.0, 0.0005).unwrap();
    let opts = Rk45Options::with_tolerances(1e-10, 1e-13);
    let fast = chain
        .simulate_crossings(&stim, &vdd, 400.0, 0.5, &opts)
        .unwrap();
    let mut checked = 0;
    for i in 0..7 {
        for tr in fast.node(i).transitions() {
            let rising = tr.value == faithful::Bit::One;
            let t_ref = bisect_crossing(run.node(i), 0.5, rising)
                .filter(|t| (t - tr.time).abs() < 1.0)
                .or_else(|| {
                    // more than one transition per node: fall back to the
                    // interpolated crossing closest to the event
                    let w = run.node(i);
                    let all = if rising {
                        w.rising_crossings(0.5)
                    } else {
                        w.falling_crossings(0.5)
                    };
                    all.into_iter()
                        .min_by(|a, b| (a - tr.time).abs().total_cmp(&(b - tr.time).abs()))
                })
                .expect("reference crossing exists");
            assert!(
                (t_ref - tr.time).abs() < 1e-6,
                "node {i}: RK45 {} vs RK4-bisection {t_ref}",
                tr.time
            );
            checked += 1;
        }
    }
    assert!(checked >= 14, "only {checked} transitions checked");
}

/// The two characterization pipelines (dense RK4 and crossings-only
/// RK45) must produce the same physics: same sample counts, offsets and
/// delays within a few 1e-3 ps.
#[test]
fn characterize_agrees_between_rk4_and_rk45_pipelines() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let widths: Vec<f64> = (0..6).map(|i| 24.0 + 14.0 * i as f64).collect();
    let cfg_rk4 = SweepConfig {
        widths: widths.clone(),
        dt: 0.05,
        integrator: Integrator::Rk4,
        ..SweepConfig::default()
    };
    let cfg_rk45 = SweepConfig {
        widths,
        ..SweepConfig::default()
    };
    let runner = SweepRunner::new();
    let (up4, down4) = runner.characterize(&chain, &vdd, &cfg_rk4).unwrap();
    let (up5, down5) = runner.characterize(&chain, &vdd, &cfg_rk45).unwrap();
    assert_eq!(up4.len(), up5.len());
    assert_eq!(down4.len(), down5.len());
    for (a, b) in up4.iter().zip(&up5).chain(down4.iter().zip(&down5)) {
        assert_eq!(a.edge, b.edge);
        assert!((a.offset - b.offset).abs() < 1e-2, "{a:?} vs {b:?}");
        assert!((a.delay - b.delay).abs() < 1e-2, "{a:?} vs {b:?}");
    }
}

/// Parallel sweeps are bitwise reproducible for every worker count —
/// the analog pipeline is pure, so no seeds are involved at all.
#[test]
fn sweep_runner_is_deterministic_across_worker_counts() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let cfg = SweepConfig {
        widths: (0..9).map(|i| 22.0 + 11.0 * i as f64).collect(),
        ..SweepConfig::default()
    };
    let reference = SweepRunner::new()
        .with_workers(1)
        .characterize(&chain, &vdd, &cfg)
        .unwrap();
    for workers in [2, 4, 7] {
        let got = SweepRunner::new()
            .with_workers(workers)
            .characterize(&chain, &vdd, &cfg)
            .unwrap();
        assert_eq!(reference, got, "workers = {workers}");
    }
}
