//! Chaos acceptance suite for the fault-tolerant sweep machinery:
//! deterministic fault injection, scenario supervision, quarantine
//! replay, and checkpoint/resume bit-identity.
//!
//! Tests that run sweeps *without* wanting injected faults pin an empty
//! [`FaultPlan`] explicitly, so the suite stays hermetic when CI runs it
//! under the `IVL_FAULT_SEED` chaos matrix.

use std::time::Duration;

use faithful::circuit::SimError;
use faithful::{
    ChannelSpec, DigitalResult, DigitalSpec, Error, Experiment, ExperimentSpec, FailurePolicySpec,
    FaultKind, FaultPlan, NoiseSpec, ScenarioSpec, SignalSpec, TopologySpec, WorkloadSpec,
};
use proptest::prelude::*;

const N: usize = 1000;
const PANIC_AT: usize = 17;
const BUDGET_AT: usize = 503;
const STALL_AT: usize = 901;
const SEED_BASE: u64 = 9000;

fn chain_channel() -> ChannelSpec {
    ChannelSpec::eta_exp(1.0, 0.4, 0.5, 0.02, 0.02, NoiseSpec::Uniform { seed: 0 })
}

fn chaos_spec(scenarios: usize, workers: u32) -> DigitalSpec {
    let mut d = DigitalSpec::new(
        TopologySpec::InverterChain {
            stages: 4,
            channel: chain_channel(),
        },
        100.0,
    )
    .with_workers(workers)
    .with_on_failure(FailurePolicySpec::Skip);
    for k in 0..scenarios {
        d = d.with_scenario(
            ScenarioSpec::new(format!("s{k}"))
                .with_seed(SEED_BASE + k as u64)
                .with_input("a", SignalSpec::pulse(1.0, 4.0 + (k % 5) as f64)),
        );
    }
    d
}

fn three_faults() -> FaultPlan {
    FaultPlan::new()
        .with_fault(PANIC_AT, FaultKind::Panic)
        .with_fault(BUDGET_AT, FaultKind::ExhaustBudget)
        .with_fault(STALL_AT, FaultKind::Stall)
}

fn run_digital(experiment: Experiment) -> DigitalResult {
    experiment
        .run()
        .expect("sweep completes")
        .digital()
        .expect("digital workload")
        .clone()
}

#[test]
fn chaos_sweep_skips_exactly_the_injected_faults() {
    // fault-free reference, single worker
    let reference =
        run_digital(Experiment::digital(chaos_spec(N, 1)).with_fault_plan(FaultPlan::new()));
    assert_eq!(reference.failed, 0);
    assert_eq!(reference.completed, N);

    for workers in [1u32, 2, 4] {
        let run = run_digital(
            Experiment::digital(chaos_spec(N, workers))
                .with_fault_plan(three_faults())
                .with_scenario_timeout(Duration::from_millis(300)),
        );
        assert_eq!(run.completed, N - 3, "workers={workers}");
        assert_eq!(run.failed, 3, "workers={workers}");
        assert_eq!(run.retried, 0, "workers={workers}");

        let indices: Vec<usize> = run.failures.iter().map(|f| f.index).collect();
        assert_eq!(indices, vec![PANIC_AT, BUDGET_AT, STALL_AT]);
        for f in &run.failures {
            assert_eq!(
                f.seed,
                Some(SEED_BASE + f.index as u64),
                "workers={workers}"
            );
            assert_eq!(f.label, format!("s{}", f.index));
        }
        assert!(matches!(
            run.failures[0].cause,
            SimError::ScenarioPanicked { .. }
        ));
        assert!(matches!(
            run.failures[1].cause,
            SimError::MaxEventsExceeded { budget: 1, .. }
        ));
        assert!(matches!(run.failures[2].cause, SimError::Cancelled { .. }));

        // every survivor is bit-identical to the fault-free reference
        for (i, outcome) in run.outcomes.iter().enumerate() {
            if matches!(i, PANIC_AT | BUDGET_AT | STALL_AT) {
                assert!(!outcome.is_ok(), "workers={workers} index={i}");
                continue;
            }
            assert_eq!(
                outcome.signal("y"),
                reference.outcomes[i].signal("y"),
                "workers={workers} index={i}"
            );
        }
    }
}

#[test]
fn quarantine_specs_replay_standalone() {
    let run = run_digital(
        Experiment::digital(chaos_spec(N, 2))
            .with_fault_plan(three_faults())
            .with_scenario_timeout(Duration::from_millis(300)),
    );
    assert_eq!(run.quarantine.len(), 3);

    for q in &run.quarantine {
        let spec: ExperimentSpec = q.spec.parse().expect("quarantine spec parses");
        let WorkloadSpec::Digital(d) = spec.workload.clone() else {
            panic!("quarantine spec is not digital");
        };
        assert_eq!(d.workers, Some(1));
        assert_eq!(d.on_failure, FailurePolicySpec::Abort);
        assert_eq!(d.scenarios.len(), 1);
        assert_eq!(d.scenarios[0].label, q.label);
        assert_eq!(d.scenarios[0].seed, Some(SEED_BASE + q.index as u64));

        // replay each quarantined scenario in isolation, re-injecting
        // the same fault where the failure was injected (panic, stall);
        // budget exhaustion is inherent to the embedded max_events = 1
        let replay = Experiment::new(spec);
        let replay = match q.index {
            PANIC_AT => replay.with_fault_plan(FaultPlan::new().with_fault(0, FaultKind::Panic)),
            STALL_AT => replay
                .with_fault_plan(FaultPlan::new().with_fault(0, FaultKind::Stall))
                .with_scenario_timeout(Duration::from_millis(200)),
            _ => {
                assert_eq!(d.max_events, Some(1));
                replay.with_fault_plan(FaultPlan::new())
            }
        };
        let err = replay.run().expect_err("quarantined scenario reproduces");
        let Error::Sweep(aborted) = err else {
            panic!("expected Error::Sweep, got {err}");
        };
        assert_eq!(aborted.failure.index, 0);
        assert_eq!(aborted.failure.seed, Some(SEED_BASE + q.index as u64));
        let reproduced = match q.index {
            PANIC_AT => matches!(aborted.failure.cause, SimError::ScenarioPanicked { .. }),
            STALL_AT => matches!(aborted.failure.cause, SimError::Cancelled { .. }),
            _ => matches!(
                aborted.failure.cause,
                SimError::MaxEventsExceeded { budget: 1, .. }
            ),
        };
        assert!(reproduced, "index {}: {}", q.index, aborted.failure.cause);
    }
}

#[test]
fn quarantine_dir_env_writes_replayable_spec_files() {
    let dir = std::env::temp_dir().join(format!("faithful_quarantine_{}", std::process::id()));
    std::env::set_var("IVL_FAULT_QUARANTINE_DIR", &dir);
    let run = run_digital(
        Experiment::digital(chaos_spec(40, 2))
            .with_fault_plan(FaultPlan::new().with_fault(7, FaultKind::Panic)),
    );
    std::env::remove_var("IVL_FAULT_QUARANTINE_DIR");
    assert_eq!(run.failed, 1);
    let path = dir.join("quarantine_0007_s7.spec");
    let text = std::fs::read_to_string(&path).expect("quarantine file written");
    assert_eq!(text, run.quarantine[0].spec);
    text.parse::<ExperimentSpec>().expect("file parses");
    std::fs::remove_dir_all(&dir).ok();
}

/// The CI chaos matrix runs this binary with `IVL_FAULT_SEED` set; the
/// facade then derives a seeded plan (panic + budget exhaustion +
/// stall) and the sweep must still complete under `skip` with exactly
/// the derived failures. Without the variable this is a no-op.
#[test]
fn env_seeded_fault_plan_is_survived() {
    let Some(seed) = std::env::var("IVL_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    else {
        return;
    };
    let scenarios = 100;
    let expected = FaultPlan::seeded(seed, scenarios);
    let run = run_digital(
        Experiment::digital(chaos_spec(scenarios, 2))
            .with_scenario_timeout(Duration::from_millis(300)),
    );
    let mut want: Vec<usize> = expected.faults().iter().map(|(i, _)| *i).collect();
    want.sort_unstable();
    let got: Vec<usize> = run.failures.iter().map(|f| f.index).collect();
    assert_eq!(got, want, "IVL_FAULT_SEED={seed}");
    assert_eq!(run.completed, scenarios - want.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill a checkpointed sweep mid-flight (injected panic under
    /// `on_failure = abort`), then resume from the sidecar: the resumed
    /// run must be bit-identical to an uninterrupted fault-free run.
    #[test]
    fn resume_after_midsweep_kill_is_bit_identical(
        n in 6usize..24,
        k_frac in 0.2f64..0.95,
        every in 1usize..6,
        salt in 0u64..1000,
    ) {
        let k = ((n as f64 * k_frac) as usize).min(n - 1);
        let spec = chaos_spec(n, 2).with_on_failure(FailurePolicySpec::Abort);
        let path = std::env::temp_dir().join(format!(
            "faithful_ckpt_{}_{n}_{k}_{every}_{salt}.spec",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();

        let reference = run_digital(
            Experiment::digital(spec.clone()).with_fault_plan(FaultPlan::new()),
        );

        let err = Experiment::digital(spec)
            .with_fault_plan(FaultPlan::new().with_fault(k, FaultKind::Panic))
            .with_checkpoint(&path)
            .with_checkpoint_every(every)
            .run()
            .expect_err("injected panic aborts the sweep");
        let Error::Sweep(aborted) = err else {
            panic!("expected Error::Sweep, got {err}");
        };
        prop_assert_eq!(aborted.failure.index, k);
        prop_assert_eq!(aborted.failure.seed, Some(SEED_BASE + k as u64));

        let resumed = Experiment::resume(&path)
            .expect("sidecar parses")
            .with_fault_plan(FaultPlan::new())
            .run()
            .expect("resumed run completes")
            .digital()
            .expect("digital workload")
            .clone();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(resumed.completed, reference.completed);
        prop_assert_eq!(resumed.failed, 0);
        prop_assert_eq!(resumed.outcomes.len(), reference.outcomes.len());
        for (a, b) in resumed.outcomes.iter().zip(reference.outcomes.iter()) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(&a.signals, &b.signals);
        }
        prop_assert_eq!(&resumed.stats, &reference.stats);
    }
}
