//! Cross-family consistency of the delay-pair implementations: the same
//! mathematical involution represented four ways must agree.

use faithful::core::delay::{
    check_involution, delta_min_of, DelayPair, DerivedPair, EmpiricalPair, ExpChannel,
    PiecewiseLinearPair, RationalPair,
};
use proptest::prelude::*;

fn arb_exp() -> impl Strategy<Value = ExpChannel> {
    (0.4f64..2.5, 0.1f64..0.9, 0.3f64..0.7)
        .prop_map(|(tau, tp, vth)| ExpChannel::new(tau, tp, vth).expect("valid"))
}

fn dense_samples<F: Fn(f64) -> f64>(lo: f64, hi: f64, n: usize, f: F) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let t = lo + (hi - lo) * i as f64 / (n - 1) as f64;
            (t, f(t))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn four_representations_agree_on_exp_channels(d in arb_exp(), t in -0.2f64..2.0) {
        prop_assume!(t > -0.8 * d.delta_min());
        let lo = -0.9 * d.delta_min();
        let hi = 4.0 * d.tau();
        prop_assume!(t < hi * 0.9 && t > lo * 0.9);

        // 1) closed form (ground truth)
        let want_up = d.delta_up(t);
        let want_down = d.delta_down(t);

        // 2) derived: δ↓ from δ↑ by numeric inversion
        let dc = d.clone();
        let derived = DerivedPair::new(
            move |x| dc.delta_up(x),
            d.delta_up_inf(),
            -d.delta_down_inf(),
        )
        .expect("valid derivation");
        prop_assert!((derived.delta_up(t) - want_up).abs() < 1e-9);
        prop_assert!((derived.delta_down(t) - want_down).abs() < 1e-6);

        // 3) piecewise-linear through dense samples (reflected δ↓)
        let pl = PiecewiseLinearPair::from_up_samples(&dense_samples(lo, hi, 400, |x| {
            d.delta_up(x)
        }))
        .expect("concave increasing samples");
        prop_assert!((pl.delta_up(t) - want_up).abs() < 2e-3, "{t}");
        // the reflected δ↓ is only valid where −δ↓(t) stays in range
        if -want_down > lo && -want_down < hi {
            prop_assert!((pl.delta_down(t) - want_down).abs() < 2e-3, "{t}");
        }

        // 4) empirical: both polylines measured independently
        let emp = EmpiricalPair::from_samples(
            &dense_samples(lo, hi, 400, |x| d.delta_up(x)),
            &dense_samples(lo, hi, 400, |x| d.delta_down(x)),
        )
        .expect("valid samples");
        prop_assert!((emp.delta_up(t) - want_up).abs() < 2e-3);
        prop_assert!((emp.delta_down(t) - want_down).abs() < 2e-3);
    }

    #[test]
    fn delta_min_agrees_across_representations(d in arb_exp()) {
        let want = d.t_p(); // exact for exp-channels
        let lo = -0.95 * d.delta_min();
        let hi = 4.0 * d.tau();
        let pl = PiecewiseLinearPair::from_up_samples(&dense_samples(lo, hi, 300, |x| {
            d.delta_up(x)
        }))
        .expect("valid");
        prop_assert!((delta_min_of(&pl).unwrap() - want).abs() < 5e-3);
        let emp = EmpiricalPair::from_samples(
            &dense_samples(lo, hi, 300, |x| d.delta_up(x)),
            &dense_samples(lo, hi, 300, |x| d.delta_down(x)),
        )
        .expect("valid");
        prop_assert!((delta_min_of(&emp).unwrap() - want).abs() < 5e-3);
    }

    #[test]
    fn rational_pairs_survive_derivation_roundtrip(
        a in 0.6f64..3.0,
        c in 0.6f64..3.0,
        bf in 0.1f64..0.9,
        t in -0.3f64..3.0,
    ) {
        let r = RationalPair::new(a, bf * a * c, c).expect("valid");
        prop_assume!(t > -0.8 * r.delta_min());
        let rc = r;
        let derived = DerivedPair::new(move |x| rc.delta_up(x), a, -c).expect("valid");
        prop_assert!((derived.delta_down(t) - r.delta_down(t)).abs() < 1e-6);
        // and the involution check accepts both
        let rep = check_involution(&r, -0.5 * r.delta_min(), 2.0, 30);
        prop_assert!(rep.is_valid(1e-7), "{rep:?}");
    }
}
