//! End-to-end faithfulness: Theorem 12 (unbounded SPF is solvable with
//! η-involution channels) and the contrast with non-faithful models.

use faithful::core::channel::{Channel, DdmEdgeParams, DegradationDelay, InertialDelay};
use faithful::core::delay::{ExpChannel, RationalPair};
use faithful::core::noise::{EtaBounds, RecordedChoices, UniformNoise, WorstCaseAdversary};
use faithful::spf::{verify_spf, LoopOutcome, PulseTrainFate, SpfCircuit, WorstCaseRecurrence};
use faithful::{Bit, PulseStats, Signal};

fn exp_spf(eta: f64) -> SpfCircuit<ExpChannel> {
    SpfCircuit::dimensioned(
        ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
        EtaBounds::new(eta, eta).unwrap(),
    )
    .unwrap()
}

#[test]
fn theorem_12_f1_to_f4_battery() {
    let circuit = exp_spf(0.02);
    let th = circuit.theory().unwrap();
    let widths: Vec<f64> = (1..=12)
        .map(|i| th.filter_bound * 0.3 + i as f64 * (th.lock_bound * 1.3) / 12.0)
        .collect();
    let report = verify_spf(&circuit, &widths, 500.0).unwrap();
    assert!(report.passes(1e-3), "{report:?}");
}

#[test]
fn theorem_12_with_rational_delay_family() {
    let circuit = SpfCircuit::dimensioned(
        RationalPair::new(2.0, 1.0, 2.0).unwrap(),
        EtaBounds::new(0.02, 0.02).unwrap(),
    )
    .unwrap();
    let th = circuit.theory().unwrap();
    let widths = [
        th.filter_bound * 0.7,
        th.delta0_tilde * 0.99,
        th.delta0_tilde * 1.01,
        th.lock_bound * 1.5,
    ];
    let report = verify_spf(&circuit, &widths, 500.0).unwrap();
    assert!(report.passes(1e-3), "{report:?}");
}

#[test]
fn theorem_9_regimes_match_between_theory_recurrence_and_simulation() {
    let circuit = exp_spf(0.03);
    let th = circuit.theory().unwrap();
    let rec = WorstCaseRecurrence::new(circuit.delay_pair().clone(), circuit.bounds());
    let horizon = 400.0;
    for frac in [0.6, 0.95, 1.05, 1.5] {
        let d0 = th.delta0_tilde * frac;
        let fate = rec.fate(d0, 5000);
        let run = circuit
            .simulate(
                WorstCaseAdversary,
                &Signal::pulse(0.0, d0).unwrap(),
                horizon,
            )
            .unwrap();
        let outcome = LoopOutcome::classify(&run.or_signal, horizon, 20.0);
        match fate {
            PulseTrainFate::Locks { .. } => {
                assert!(
                    matches!(outcome, LoopOutcome::Latched { .. }),
                    "d0={d0}: {fate:?} vs {outcome:?}"
                );
                assert_eq!(run.output.len(), 1, "output must rise once");
            }
            PulseTrainFate::Dies { .. } => {
                assert!(
                    matches!(outcome, LoopOutcome::Filtered { .. }),
                    "d0={d0}: {fate:?} vs {outcome:?}"
                );
                assert!(run.output.is_zero());
            }
            PulseTrainFate::Oscillating { .. } => {}
        }
    }
}

#[test]
fn lemma_5_overshoot_implies_lock_for_every_random_adversary() {
    // Lemma 5 bounds the pulses of *infinite* trains by ∆. Its
    // contrapositive is executable on finite runs: once any feedback
    // pulse exceeds ∆, the subsequent pulses grow monotonically
    // (Lemma 7) and the loop resolves to 1.
    let circuit = exp_spf(0.02);
    let th = circuit.theory().unwrap();
    let horizon = 300.0;
    for seed in 0..20u64 {
        let run = circuit
            .simulate(
                UniformNoise::new(seed),
                &Signal::pulse(0.0, th.delta0_tilde).unwrap(),
                horizon,
            )
            .unwrap();
        let stats = PulseStats::of(&run.or_signal);
        let ups = stats.up_times();
        let overshoot = ups
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, &u)| u > th.delta_bar + 1e-9)
            .map(|(i, _)| i);
        if let Some(i) = overshoot {
            // monotone growth from the first overshoot on
            for w in ups[i..].windows(2) {
                assert!(
                    w[1] > w[0] - 1e-9,
                    "seed {seed}: widths must grow after overshoot: {ups:?}"
                );
            }
            // and the loop resolves to 1 (the last activity is a rise,
            // or the signal already sits at 1)
            assert_eq!(
                run.or_signal.final_value(),
                Bit::One,
                "seed {seed}: overshoot must latch: {}",
                run.or_signal
            );
        }
    }
}

#[test]
fn lemma_5_bounds_hold_on_the_worst_case_self_repeating_train() {
    // The infinite-train bounds themselves, probed on the closest
    // finite witness: the worst-case adversary at the threshold ∆̃₀
    // produces a long self-repeating train with ∆_n ≈ ∆ and P_n ≈ P.
    let circuit = exp_spf(0.02);
    let th = circuit.theory().unwrap();
    let run = circuit
        .simulate(
            WorstCaseAdversary,
            &Signal::pulse(0.0, th.delta0_tilde).unwrap(),
            400.0,
        )
        .unwrap();
    let stats = PulseStats::of(&run.or_signal);
    let ups = stats.up_times();
    assert!(ups.len() >= 10, "need a long train: {}", run.or_signal);
    // The bisection error on ∆̃₀ (~1e-9) is amplified by the growth
    // ratio a per pulse (Lemma 7), so only the early train sits at the
    // fixed point; check pulses 1..=8 (drift there ≲ 1e-6). Pulse 0 is
    // the input pulse itself.
    for &u in &ups[1..=8] {
        assert!(
            (u - th.delta_bar).abs() < 1e-4,
            "up-time {u} vs ∆ = {}",
            th.delta_bar
        );
    }
    for &p in &stats.periods()[1..=8] {
        assert!(
            (p - th.period).abs() < 1e-4,
            "period {p} vs P = {}",
            th.period
        );
    }
}

#[test]
fn adversary_can_sustain_oscillation_longer_than_zero_noise() {
    // With η = 0 the loop at ∆̃₀ + ε resolves quickly (geometric growth);
    // an adversary pushing against the drift keeps it alive longer.
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let bounds = EtaBounds::new(0.02, 0.02).unwrap();
    let circuit = SpfCircuit::dimensioned(d.clone(), bounds).unwrap();
    let th = circuit.theory().unwrap();
    let d0 = th.delta0_tilde + 5e-4;
    let horizon = 300.0;

    let zero_run = circuit
        .simulate(
            RecordedChoices::new(vec![]),
            &Signal::pulse(0.0, d0).unwrap(),
            horizon,
        )
        .unwrap();
    let zero_pulses = PulseStats::of(&zero_run.or_signal).pulse_count();

    // worst-case adversary counteracts growth (rising late, falling early)
    let wc_run = circuit
        .simulate(
            WorstCaseAdversary,
            &Signal::pulse(0.0, d0).unwrap(),
            horizon,
        )
        .unwrap();
    let wc_pulses = PulseStats::of(&wc_run.or_signal).pulse_count();
    assert!(
        wc_pulses > zero_pulses,
        "adversary should sustain more pulses: {wc_pulses} vs {zero_pulses}"
    );
}

#[test]
fn stabilization_time_follows_log_law_in_simulation() {
    let circuit = exp_spf(0.02);
    let th = circuit.theory().unwrap();
    let mut pulse_counts = Vec::new();
    for exp in 1..=4 {
        let gap = 10f64.powi(-exp);
        let run = circuit
            .simulate(
                WorstCaseAdversary,
                &Signal::pulse(0.0, th.delta0_tilde + gap).unwrap(),
                2000.0,
            )
            .unwrap();
        let outcome = LoopOutcome::classify(&run.or_signal, 2000.0, 50.0);
        match outcome {
            LoopOutcome::Latched { pulses, .. } => pulse_counts.push(pulses as f64),
            other => panic!("gap {gap}: expected latch, got {other:?}"),
        }
    }
    // counts increase roughly linearly in the decade index
    for w in pulse_counts.windows(2) {
        assert!(w[1] >= w[0], "{pulse_counts:?}");
        assert!(w[1] - w[0] <= 25.0, "{pulse_counts:?}");
    }
    assert!(
        pulse_counts.last().unwrap() - pulse_counts.first().unwrap() >= 1.0,
        "log law must show growth: {pulse_counts:?}"
    );
}

#[test]
fn bounded_models_solve_bounded_spf_the_unfaithfulness_witness() {
    // An inertial delay solves *bounded-time* SPF outright: output settles
    // within a fixed horizon for every input pulse — which is physically
    // impossible (Marino), hence the model is unfaithful. The η-involution
    // loop instead has unbounded stabilization time (metastability).
    let mut inertial = InertialDelay::new(1.0, 0.5).unwrap();
    let settle_horizon = 3.0; // delay + max pulse width considered
    for i in 1..200 {
        let w = i as f64 * 0.01;
        let out = inertial.apply(&Signal::pulse(0.0, w).unwrap());
        // settled (constant) after the horizon, for every width:
        assert!(
            out.last_time().unwrap_or(0.0) <= settle_horizon,
            "width {w}"
        );
        // and output is never a runt pulse shorter than the window
        if let Some(min) = out.min_interval() {
            assert!(min >= 0.5);
        }
    }

    // DDM likewise: bounded delays → bounded stabilization
    let mut ddm = DegradationDelay::symmetric(DdmEdgeParams::new(1.0, 0.1, 0.8).unwrap());
    for i in 1..200 {
        let w = i as f64 * 0.01;
        let out = ddm.apply(&Signal::pulse(0.0, w).unwrap());
        assert!(
            out.last_time().unwrap_or(0.0) <= 1.0 + w + 1e-9,
            "width {w}"
        );
    }

    // η-involution loop: stabilization grows without bound as ∆₀ → ∆̃₀
    let circuit = exp_spf(0.02);
    let th = circuit.theory().unwrap();
    let settle_after = |gap: f64| -> f64 {
        let run = circuit
            .simulate(
                WorstCaseAdversary,
                &Signal::pulse(0.0, th.delta0_tilde + gap).unwrap(),
                5000.0,
            )
            .unwrap();
        run.or_signal.last_time().unwrap_or(0.0)
    };
    let fast = settle_after(1e-1);
    let slow = settle_after(1e-6);
    assert!(
        slow > 2.0 * fast,
        "stabilization must blow up near the threshold: {slow} vs {fast}"
    );
}

#[test]
fn output_never_produces_short_pulses_even_when_loop_oscillates() {
    // F4 at the output across a fine ∆₀ grid straddling the metastable
    // window, under several adversaries
    let circuit = exp_spf(0.02);
    let th = circuit.theory().unwrap();
    let horizon = 300.0;
    for i in 0..40 {
        let d0 = th.filter_bound + (th.lock_bound - th.filter_bound) * i as f64 / 39.0;
        if d0 <= 0.0 {
            continue;
        }
        for seed in [1u64, 17, 113] {
            let run = circuit
                .simulate(
                    UniformNoise::new(seed),
                    &Signal::pulse(0.0, d0).unwrap(),
                    horizon,
                )
                .unwrap();
            assert!(
                run.output.len() <= 1,
                "d0={d0}, seed={seed}: {}",
                run.output
            );
            if run.output.len() == 1 {
                assert_eq!(run.output.final_value(), Bit::One);
            }
        }
    }
}

#[test]
fn constraint_c_is_necessary_for_the_dimensioning() {
    // Violating (C) must be rejected before any simulation happens.
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let max_minus = EtaBounds::max_minus_for_plus(0.05, &d).unwrap();
    let ok = EtaBounds::new(max_minus * 0.99, 0.05).unwrap();
    let bad = EtaBounds::new(max_minus * 1.01, 0.05).unwrap();
    assert!(SpfCircuit::dimensioned(d.clone(), ok).is_ok());
    assert!(SpfCircuit::dimensioned(d, bad).is_err());
}
