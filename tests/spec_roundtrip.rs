//! Property tests for the `ExperimentSpec` text serialization: for any
//! finite spec, `spec -> String -> spec` is the identity.

use faithful::{
    AnalogSpec, AnalogTask, ChainSpec, ChannelRunSpec, ChannelSpec, DelaySpec, DigitalSpec,
    EdgeSpec, ExperimentSpec, FailurePolicySpec, GateKindSpec, IntegratorSpec, NetlistSpec,
    NodeSpec, NoiseSpec, Orientation, OutputSelect, ReferenceSpec, ScenarioSpec, SignalSpec,
    SpfSpec, SpfTask, SupplySpec, SweepSpec, TopologySpec, WorkloadSpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A finite `f64` drawn from a wide dynamic range, including negative,
/// integral-valued and subnormal-ish magnitudes — the values a text
/// serialization is most likely to mangle.
fn arb_f64(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..6u32) {
        0 => rng.gen_range(-10.0..10.0),
        1 => f64::from(rng.gen_range(-1000i32..1000)), // integral-valued reals
        2 => rng.gen_range(0.0..1.0) * 10f64.powi(rng.gen_range(-30..30)),
        3 => -rng.gen_range(0.0..1.0) * 10f64.powi(rng.gen_range(-300..300)),
        4 => 0.0,
        _ => rng.gen_range(1e-3..1e3),
    }
}

/// Labels and port names exercise quoting: spaces, quotes, backslashes,
/// newlines and non-ASCII.
fn arb_name(rng: &mut StdRng) -> String {
    const ALPHABET: &[char] = &[
        'a', 'B', '0', '_', ' ', '"', '\\', '\n', '\t', '{', '}', '[', ']', ';', ',', '=', 'δ',
        '↑', '#',
    ];
    let len = rng.gen_range(1..8usize);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect()
}

fn arb_word(rng: &mut StdRng) -> String {
    const FIRST: &[char] = &['a', 'b', 'z', '_', 'Q'];
    const REST: &[char] = &['a', '9', '_', 'Z'];
    let len = rng.gen_range(0..5usize);
    let mut s = String::new();
    s.push(FIRST[rng.gen_range(0..FIRST.len())]);
    for _ in 0..len {
        s.push(REST[rng.gen_range(0..REST.len())]);
    }
    s
}

fn arb_signal(rng: &mut StdRng) -> SignalSpec {
    match rng.gen_range(0..4u32) {
        0 => SignalSpec::Zero,
        1 => SignalSpec::pulse(arb_f64(rng), arb_f64(rng)),
        2 => {
            let n = rng.gen_range(0..4usize);
            SignalSpec::train((0..n).map(|_| (arb_f64(rng), arb_f64(rng))))
        }
        _ => {
            let n = rng.gen_range(0..5usize);
            SignalSpec::times(rng.gen_range(0..2u32) == 0, (0..n).map(|_| arb_f64(rng)))
        }
    }
}

fn arb_noise(rng: &mut StdRng) -> NoiseSpec {
    match rng.gen_range(0..6u32) {
        0 => NoiseSpec::Zero,
        1 => NoiseSpec::WorstCase,
        2 => NoiseSpec::Extending,
        3 => NoiseSpec::Uniform { seed: rng.gen() },
        4 => NoiseSpec::Gaussian {
            sigma: arb_f64(rng),
            seed: rng.gen(),
        },
        _ => NoiseSpec::Constant {
            shift: arb_f64(rng),
        },
    }
}

fn arb_channel(rng: &mut StdRng) -> ChannelSpec {
    let mut spec = match rng.gen_range(0..6u32) {
        0 => ChannelSpec::pure(arb_f64(rng)),
        1 => ChannelSpec::inertial(arb_f64(rng), arb_f64(rng)),
        2 => ChannelSpec::ddm(arb_f64(rng), arb_f64(rng), arb_f64(rng)),
        3 => ChannelSpec::involution_exp(arb_f64(rng), arb_f64(rng), arb_f64(rng)),
        4 => ChannelSpec::eta_exp(
            arb_f64(rng),
            arb_f64(rng),
            arb_f64(rng),
            arb_f64(rng),
            arb_f64(rng),
            arb_noise(rng),
        ),
        // a custom kind with an arbitrary mix of parameter types
        _ => {
            let mut c = ChannelSpec::new(arb_word(rng));
            for _ in 0..rng.gen_range(0..4usize) {
                let name = arb_word(rng);
                c = match rng.gen_range(0..4u32) {
                    0 => c.with_num(name, arb_f64(rng)),
                    1 => c.with_int(name, rng.gen()),
                    2 => c.with_text(name, arb_word(rng)),
                    _ => c.with_text(name, arb_name(rng)),
                };
            }
            c
        }
    };
    if rng.gen_range(0..4u32) == 0 {
        spec = spec.with_int("seed", rng.gen());
    }
    spec
}

fn arb_gate_kind(rng: &mut StdRng) -> GateKindSpec {
    match rng.gen_range(0..9u32) {
        0 => GateKindSpec::Buf,
        1 => GateKindSpec::Not,
        2 => GateKindSpec::And,
        3 => GateKindSpec::Or,
        4 => GateKindSpec::Nand,
        5 => GateKindSpec::Nor,
        6 => GateKindSpec::Xor,
        7 => GateKindSpec::Xnor,
        _ => {
            let inputs = rng.gen_range(1..3u32);
            GateKindSpec::Table {
                inputs,
                rows: (0..(1 << inputs))
                    .map(|_| rng.gen_range(0..2u32) == 0)
                    .collect(),
            }
        }
    }
}

fn arb_topology(rng: &mut StdRng) -> TopologySpec {
    if rng.gen_range(0..2u32) == 0 {
        TopologySpec::InverterChain {
            stages: rng.gen_range(1..12u32),
            channel: arb_channel(rng),
        }
    } else {
        let mut nodes = Vec::new();
        for _ in 0..rng.gen_range(1..5usize) {
            nodes.push(match rng.gen_range(0..3u32) {
                0 => NodeSpec::Input {
                    name: arb_name(rng),
                },
                1 => NodeSpec::Output {
                    name: arb_name(rng),
                },
                _ => NodeSpec::Gate {
                    name: arb_name(rng),
                    kind: arb_gate_kind(rng),
                    arity: if rng.gen_range(0..2u32) == 0 {
                        Some(rng.gen_range(1..4u32))
                    } else {
                        None
                    },
                    init: rng.gen_range(0..2u32) == 0,
                },
            });
        }
        let mut edges = Vec::new();
        for _ in 0..rng.gen_range(0..4usize) {
            edges.push(EdgeSpec {
                from: arb_name(rng),
                to: arb_name(rng),
                pin: rng.gen_range(0..4u32),
                channel: if rng.gen_range(0..2u32) == 0 {
                    Some(arb_channel(rng))
                } else {
                    None
                },
            });
        }
        TopologySpec::Netlist(NetlistSpec { nodes, edges })
    }
}

fn arb_digital(rng: &mut StdRng) -> DigitalSpec {
    let mut d = DigitalSpec::new(arb_topology(rng), arb_f64(rng));
    if rng.gen_range(0..2u32) == 0 {
        d = d.with_workers(rng.gen_range(1..9u32));
    }
    if rng.gen_range(0..2u32) == 0 {
        d = d.with_max_events(rng.gen());
    }
    d = d.with_on_failure(match rng.gen_range(0..4u32) {
        0 => FailurePolicySpec::Abort,
        1 => FailurePolicySpec::Retry {
            attempts: rng.gen_range(0..5u32),
        },
        _ => FailurePolicySpec::Skip,
    });
    for _ in 0..rng.gen_range(0..4usize) {
        let mut s = ScenarioSpec::new(arb_name(rng));
        if rng.gen_range(0..2u32) == 0 {
            s = s.with_seed(rng.gen());
        }
        for _ in 0..rng.gen_range(0..3usize) {
            s = s.with_input(arb_name(rng), arb_signal(rng));
        }
        d = d.with_scenario(s);
    }
    let watch = (0..rng.gen_range(0..3usize))
        .map(|_| arb_name(rng))
        .collect();
    d.with_outputs(OutputSelect {
        signals: rng.gen_range(0..2u32) == 0,
        stats: rng.gen_range(0..2u32) == 0,
        vcd: rng.gen_range(0..2u32) == 0,
        watch,
    })
}

fn arb_analog(rng: &mut StdRng) -> AnalogSpec {
    let task = match rng.gen_range(0..3u32) {
        0 => AnalogTask::Samples {
            inverted: rng.gen_range(0..2u32) == 0,
        },
        1 => AnalogTask::Characterize,
        _ => AnalogTask::Deviations {
            reference: match rng.gen_range(0..4u32) {
                0 => ReferenceSpec::Exp {
                    tau: arb_f64(rng),
                    t_p: arb_f64(rng),
                    v_th: arb_f64(rng),
                },
                1 => ReferenceSpec::Rational {
                    a: arb_f64(rng),
                    b: arb_f64(rng),
                    c: arb_f64(rng),
                },
                2 => ReferenceSpec::Empirical {
                    up: (0..rng.gen_range(0..5usize))
                        .map(|_| (arb_f64(rng), arb_f64(rng)))
                        .collect(),
                    down: (0..rng.gen_range(0..5usize))
                        .map(|_| (arb_f64(rng), arb_f64(rng)))
                        .collect(),
                },
                _ => ReferenceSpec::SelfEmpirical,
            },
            orientation: match rng.gen_range(0..3u32) {
                0 => Orientation::Both,
                1 => Orientation::Normal,
                _ => Orientation::Inverted,
            },
        },
    };
    let mut a = AnalogSpec::new(rng.gen_range(1..9u32), task)
        .with_chain(ChainSpec::umc90(rng.gen_range(1..9u32)).with_width_scale(arb_f64(rng)))
        .with_sweep(SweepSpec {
            widths: (0..rng.gen_range(0..6usize))
                .map(|_| arb_f64(rng))
                .collect(),
            settle: arb_f64(rng),
            tail: arb_f64(rng),
            dt: arb_f64(rng),
            slew: arb_f64(rng),
            stage: rng.gen_range(0..7u32),
            integrator: if rng.gen_range(0..2u32) == 0 {
                IntegratorSpec::Rk4
            } else {
                IntegratorSpec::Rk45 {
                    rtol: arb_f64(rng),
                    atol: arb_f64(rng),
                }
            },
        });
    if rng.gen_range(0..2u32) == 0 {
        a = a.with_supply(SupplySpec::Sine {
            nominal: arb_f64(rng),
            amplitude: arb_f64(rng),
            period: arb_f64(rng),
            phase: arb_f64(rng),
        });
    }
    if rng.gen_range(0..2u32) == 0 {
        a = a.with_workers(rng.gen_range(1..9u32));
    }
    a
}

fn arb_spf(rng: &mut StdRng) -> SpfSpec {
    let delay = if rng.gen_range(0..2u32) == 0 {
        DelaySpec::Exp {
            tau: arb_f64(rng),
            t_p: arb_f64(rng),
            v_th: arb_f64(rng),
        }
    } else {
        DelaySpec::Rational {
            a: arb_f64(rng),
            b: arb_f64(rng),
            c: arb_f64(rng),
        }
    };
    let task = if rng.gen_range(0..2u32) == 0 {
        SpfTask::Theory
    } else {
        SpfTask::Simulate {
            noise: arb_noise(rng),
            input: arb_signal(rng),
            horizon: arb_f64(rng),
        }
    };
    SpfSpec {
        delay,
        eta_minus: arb_f64(rng),
        eta_plus: arb_f64(rng),
        task,
    }
}

fn arb_spec(seed: u64) -> ExperimentSpec {
    let rng = &mut StdRng::seed_from_u64(seed);
    match rng.gen_range(0..4u32) {
        0 => ExperimentSpec::new(WorkloadSpec::Channel(ChannelRunSpec {
            channel: arb_channel(rng),
            input: arb_signal(rng),
        })),
        1 => ExperimentSpec::digital(arb_digital(rng)),
        2 => ExperimentSpec::analog(arb_analog(rng)),
        _ => ExperimentSpec::spf(arb_spf(rng)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn spec_text_roundtrip_is_identity(seed in 0u64..u64::MAX) {
        let spec = arb_spec(seed);
        let text = spec.to_string();
        let back: ExperimentSpec = text
            .parse()
            .map_err(|e| TestCaseError::Fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(&spec, &back, "---\n{}", text);
        // a second render of the reparsed spec is byte-identical:
        // serialization is canonical
        prop_assert_eq!(text, back.to_string());
    }

    /// The service cache key: `canonical_hash` survives parse → print →
    /// parse, and comment/whitespace variants of the same document
    /// collide onto the same hash (they are the same cache entry).
    #[test]
    fn canonical_hash_is_format_insensitive(seed in 0u64..u64::MAX) {
        let spec = arb_spec(seed);
        let hash = spec.canonical_hash();
        let text = spec.to_string();
        let back: ExperimentSpec = text
            .parse()
            .map_err(|e| TestCaseError::Fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(hash, back.canonical_hash(), "---\n{}", text);

        // Reformat without changing meaning: leading/trailing blank
        // lines and comments, plus a comment just inside the workload
        // braces (the first `{` always opens the workload node, so the
        // insertion cannot land inside a quoted string).
        let variant = format!(
            "\n  # a leading comment\n{}\n# a trailing comment\n\t \n",
            text.replacen('{', "{\n  # an inline comment\n", 1)
        );
        let reparsed: ExperimentSpec = variant
            .parse()
            .map_err(|e| TestCaseError::Fail(format!("{e}\n---\n{variant}")))?;
        prop_assert_eq!(&spec, &reparsed, "---\n{}", variant);
        prop_assert_eq!(hash, reparsed.canonical_hash(), "---\n{}", variant);
    }
}

#[test]
fn readable_example_document_parses() {
    let text = r#"
# A digital sweep and its knobs, hand-written with comments.
faithful/1 digital {
  topology = chain {
    stages = 4;
    channel = eta {
      delay = exp; tau = 1.0; t_p = 0.5; v_th = 0.5;
      minus = 0.02; plus = 0.02;
      noise = uniform; seed = 7;
    };
  };
  horizon = 100;           # integers coerce to reals
  workers = 2;
  scenarios = [
    scenario { label = "w1"; seed = 1; inputs = [
      drive { port = "a"; signal = pulse { at = 1.0; width = 6.0 } }
    ] }
  ];
}
"#;
    let spec: ExperimentSpec = text.parse().unwrap();
    let WorkloadSpec::Digital(d) = &spec.workload else {
        panic!("expected digital workload");
    };
    assert_eq!(d.horizon, 100.0);
    assert_eq!(d.workers, Some(2));
    assert_eq!(d.scenarios.len(), 1);
    assert_eq!(d.scenarios[0].seed, Some(1));
    // defaults apply when outputs are omitted
    assert_eq!(d.outputs, OutputSelect::default());
    // and the canonical form round-trips
    let canonical = spec.to_string();
    assert_eq!(canonical.parse::<ExperimentSpec>().unwrap(), spec);
}

#[test]
fn parse_errors_are_informative() {
    // wrong version
    let err = "faithful/9 spf {}".parse::<ExperimentSpec>().unwrap_err();
    assert!(err.message().contains("version"), "{err}");
    // unknown workload
    let err = "faithful/1 cooking {}"
        .parse::<ExperimentSpec>()
        .unwrap_err();
    assert!(err.message().contains("workload"), "{err}");
    // missing field
    let err = "faithful/1 channel { channel = pure { delay = 1.0 } }"
        .parse::<ExperimentSpec>()
        .unwrap_err();
    assert!(err.message().contains("input"), "{err}");
    // unknown field is rejected (catches typos)
    let err = "faithful/1 channel { channel = pure {}; input = zero; bogus = 1 }"
        .parse::<ExperimentSpec>()
        .unwrap_err();
    assert!(err.message().contains("bogus"), "{err}");
    // type mismatch
    let err = "faithful/1 spf { delay = exp { tau = \"x\"; t_p = 1.0; v_th = 0.5 }; \
               eta_minus = 0.0; eta_plus = 0.0; task = theory }"
        .parse::<ExperimentSpec>()
        .unwrap_err();
    assert!(err.message().contains("tau"), "{err}");
}

#[test]
fn experiments_md_specs_parse_and_run() {
    // The two spec documents shown in EXPERIMENTS.md must stay valid.
    let digital = r#"
faithful/1 digital {
  topology = chain {
    stages = 8;
    channel = eta {
      delay = exp; tau = 1.0; t_p = 0.5; v_th = 0.5;
      minus = 0.02; plus = 0.02;
      noise = uniform; seed = 0;
    };
  };
  horizon = 100.0;
  workers = 4;
  scenarios = [
    scenario { label = "draw0"; seed = 0; inputs = [
      drive { port = "a"; signal = pulse { at = 1.0; width = 6.0 } }
    ] },
    scenario { label = "draw1"; seed = 1; inputs = [
      drive { port = "a"; signal = pulse { at = 1.0; width = 6.0 } }
    ] }
  ];
  outputs = outputs { signals = true; stats = true; vcd = false };
}
"#;
    let result = faithful::Experiment::parse(digital).unwrap().run().unwrap();
    let sweep = result.digital().expect("digital workload");
    assert_eq!(sweep.outcomes.len(), 2);
    assert_eq!(sweep.stats.as_ref().unwrap().failures, 0);
    assert!(sweep.outcomes[0].signal("y").is_some());

    let analog = r#"
faithful/1 analog {
  chain = chain { stages = 7; width_scale = 1.0 };
  supply = dc { volts = 1.0 };
  sweep = sweep {
    widths = [20.0, 32.0, 44.0, 56.0, 68.0, 80.0, 92.0, 104.0];
    settle = 60.0; tail = 250.0; dt = 0.05; slew = 10.0; stage = 3;
    integrator = rk45 { rtol = 1e-6; atol = 1e-9 };
  };
  task = characterize;
  workers = 4;
}
"#;
    let result = faithful::Experiment::parse(analog).unwrap().run().unwrap();
    let (up, down) = result
        .analog()
        .expect("analog workload")
        .characterization()
        .expect("characterize task");
    assert!(!up.is_empty());
    assert!(!down.is_empty());
}

#[test]
fn fault_tolerance_docs_are_pinned() {
    // The spec block shown in EXPERIMENTS.md "Fault tolerance" — kept
    // verbatim here so the docs cannot drift from a runnable spec.
    let spec = r#"faithful/1 digital {
  topology = chain {
    stages = 4;
    channel = eta {
      delay = exp; tau = 1.0; t_p = 0.5; v_th = 0.5;
      minus = 0.02; plus = 0.02;
      noise = uniform; seed = 0;
    };
  };
  horizon = 100.0;
  workers = 2;
  on_failure = retry { attempts = 2 };
  scenarios = [
    scenario { label = "draw0"; seed = 0; inputs = [
      drive { port = "a"; signal = pulse { at = 1.0; width = 6.0 } }
    ] }
  ];
}"#;
    let experiments = include_str!("../EXPERIMENTS.md");
    assert!(
        experiments.contains(spec),
        "EXPERIMENTS.md drifted from the pinned fault-tolerance spec"
    );
    let parsed: ExperimentSpec = spec.parse().unwrap();
    let digital = match &parsed.workload {
        WorkloadSpec::Digital(d) => d,
        other => panic!("expected digital workload, got {other:?}"),
    };
    assert_eq!(digital.on_failure, FailurePolicySpec::Retry { attempts: 2 });
    let result = faithful::Experiment::new(parsed).run().unwrap();
    let sweep = result.digital().expect("digital workload");
    assert_eq!(sweep.completed, 1);
    assert_eq!(sweep.failed, 0);

    // both documents describe the robustness surface
    for needle in [
        "## Fault tolerance",
        "### Resumable sweeps",
        "### Chaos testing",
        "IVL_FAULT_QUARANTINE_DIR",
        "IVL_FAULT_SEED",
        "Experiment::resume",
    ] {
        assert!(
            experiments.contains(needle),
            "EXPERIMENTS.md lost {needle:?}"
        );
    }
    let readme = include_str!("../README.md");
    for needle in [
        "## Fault-tolerant sweeps",
        "on_failure",
        "IVL_FAULT_QUARANTINE_DIR",
        "IVL_FAULT_SEED",
        "Experiment::resume",
        "with_fault_plan",
    ] {
        assert!(readme.contains(needle), "README.md lost {needle:?}");
    }
}
