//! Property tests of the Section IV theory over random channel
//! parameterizations: every lemma's inequality must hold wherever
//! constraint (C) admits the parameters.

use faithful::core::delay::{DelayPair, ExpChannel, RationalPair};
use faithful::core::noise::EtaBounds;
use faithful::spf::{PulseTrainFate, SpfTheory, WorstCaseRecurrence};
use proptest::prelude::*;

fn arb_exp() -> impl Strategy<Value = ExpChannel> {
    (0.2f64..3.0, 0.05f64..1.2, 0.2f64..0.8)
        .prop_map(|(tau, tp, vth)| ExpChannel::new(tau, tp, vth).expect("valid"))
}

fn arb_rational() -> impl Strategy<Value = RationalPair> {
    (0.5f64..4.0, 0.5f64..4.0, 0.05f64..0.9)
        .prop_map(|(a, c, bf)| RationalPair::new(a, bf * a * c, c).expect("valid"))
}

/// Scales requested η into the admissible (C) region of the channel.
fn admissible_bounds<D: DelayPair>(delay: &D, f_minus: f64, f_plus: f64) -> Option<EtaBounds> {
    // find the largest symmetric η, then scale the asymmetric request
    let mut eta_max: f64 = 0.0;
    let dmin = delay.delta_min();
    for i in 1..=200 {
        let eta = dmin * i as f64 / 200.0;
        if EtaBounds::new(eta, eta).ok()?.satisfies_constraint_c(delay) {
            eta_max = eta;
        } else {
            break;
        }
    }
    if eta_max == 0.0 {
        return None;
    }
    let bounds = EtaBounds::new(eta_max * f_minus, eta_max * f_plus).ok()?;
    bounds.satisfies_constraint_c(delay).then_some(bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lemma5_inequalities_hold_under_constraint_c(
        d in arb_exp(),
        f_minus in 0.0f64..0.9,
        f_plus in 0.0f64..0.9,
    ) {
        let Some(bounds) = admissible_bounds(&d, f_minus, f_plus) else {
            return Ok(());
        };
        let th = SpfTheory::compute(&d, bounds).expect("(C) holds");
        prop_assert!(th.satisfies_lemma5_inequalities(&d), "{th:?}");
        prop_assert!(th.delta_bar > 0.0);
        prop_assert!(th.delta_bar < th.delta_min);
        prop_assert!(th.gamma < 1.0);
        prop_assert!(th.growth > 1.0);
        // fixed point actually solves eq. (6)
        let h = d.delta_down(bounds.plus() - th.tau)
            + d.delta_up(-bounds.minus() - th.tau)
            - th.tau;
        prop_assert!(h.abs() < 1e-8, "h(tau) = {h}");
        // regime ordering
        prop_assert!(th.filter_bound < th.delta0_tilde);
        prop_assert!(th.delta0_tilde < th.lock_bound);
    }

    #[test]
    fn lemma5_also_holds_for_rational_family(
        d in arb_rational(),
        f in 0.0f64..0.9,
    ) {
        let Some(bounds) = admissible_bounds(&d, f, f) else {
            return Ok(());
        };
        let th = SpfTheory::compute(&d, bounds).expect("(C) holds");
        prop_assert!(th.satisfies_lemma5_inequalities(&d), "{th:?}");
    }

    #[test]
    fn recurrence_fate_is_monotone_in_delta0(
        d in arb_exp(),
        f in 0.0f64..0.8,
    ) {
        // if ∆₀ locks, every larger ∆₀ locks; if ∆₀ dies, every smaller
        // ∆₀ dies (the regimes of Theorem 9 are intervals)
        let Some(bounds) = admissible_bounds(&d, f, f) else {
            return Ok(());
        };
        let th = SpfTheory::compute(&d, bounds).expect("(C) holds");
        let rec = WorstCaseRecurrence::new(d, bounds);
        let probe: Vec<f64> = (0..12)
            .map(|i| th.filter_bound.max(0.01) * 0.5
                + (th.lock_bound * 1.2) * i as f64 / 11.0)
            .collect();
        let fates: Vec<PulseTrainFate> = probe.iter().map(|&x| rec.fate(x, 3000)).collect();
        let mut seen_lock = false;
        for (x, fate) in probe.iter().zip(&fates) {
            match fate {
                PulseTrainFate::Locks { .. } => seen_lock = true,
                PulseTrainFate::Dies { .. } => {
                    prop_assert!(!seen_lock, "death after lock at ∆₀ = {x}: {fates:?}");
                }
                PulseTrainFate::Oscillating { .. } => {}
            }
        }
    }

    #[test]
    fn theory_threshold_separates_recurrence_fates(
        d in arb_exp(),
        f in 0.0f64..0.8,
    ) {
        let Some(bounds) = admissible_bounds(&d, f, f) else {
            return Ok(());
        };
        let th = SpfTheory::compute(&d, bounds).expect("(C) holds");
        let rec = WorstCaseRecurrence::new(d, bounds);
        // a safe margin away from ∆̃₀ the fate is decided
        let margin = 0.05 * (th.lock_bound - th.filter_bound);
        prop_assert!(rec.fate(th.delta0_tilde + margin, 5000).locks());
        prop_assert!(rec.fate(th.delta0_tilde - margin, 5000).dies());
    }

    #[test]
    fn first_pulse_is_monotone_and_consistent_with_theory(
        d in arb_exp(),
        f in 0.0f64..0.8,
    ) {
        let Some(bounds) = admissible_bounds(&d, f, f) else {
            return Ok(());
        };
        let th = SpfTheory::compute(&d, bounds).expect("(C) holds");
        let rec = WorstCaseRecurrence::new(d.clone(), bounds);
        // g(∆̃₀) = ∆ via both implementations
        let a = rec.first_pulse(th.delta0_tilde);
        let b = th.first_pulse(&d, th.delta0_tilde);
        prop_assert_eq!(a, b);
        prop_assert!((a.unwrap() - th.delta_bar).abs() < 1e-7);
        // g is increasing where defined
        let mut prev = None;
        for i in 0..10 {
            let x = th.filter_bound + (th.lock_bound - th.filter_bound) * i as f64 / 9.0;
            if let Some(w) = rec.first_pulse(x) {
                if let Some(p) = prev {
                    prop_assert!(w > p, "g must increase");
                }
                prev = Some(w);
            }
        }
    }
}
