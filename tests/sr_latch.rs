//! A cross-coupled NOR SR-latch over η-involution channels: two
//! interlocking feedback loops — a harder topology than the single-loop
//! SPF circuit, and the classic metastability scenario behind the
//! paper's arbiter/synchronizer/latch equivalence (ref. [1]).

use faithful::circuit::{CircuitBuilder, GateKind, Simulator};
use faithful::core::channel::EtaInvolutionChannel;
use faithful::core::delay::ExpChannel;
use faithful::core::noise::{EtaBounds, NoiseSource, UniformNoise, ZeroNoise};
use faithful::{Bit, Signal};

/// Builds the latch: Q = NOR(R, Qb), Qb = NOR(S, Q), with η-involution
/// channels on the cross-coupling paths. Initial state: Q = 0, Qb = 1.
fn simulate_sr<N1, N2>(s: &Signal, r: &Signal, n1: N1, n2: N2, horizon: f64) -> (Signal, Signal)
where
    N1: NoiseSource + Clone + Send + 'static,
    N2: NoiseSource + Clone + Send + 'static,
{
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let bounds = EtaBounds::new(0.02, 0.02).unwrap();
    let mut b = CircuitBuilder::new();
    let s_in = b.input("s");
    let r_in = b.input("r");
    let q_gate = b.gate("q", GateKind::Nor, Bit::Zero);
    let qb_gate = b.gate("qb", GateKind::Nor, Bit::One);
    let q_out = b.output("q_out");
    let qb_out = b.output("qb_out");
    b.connect_direct(r_in, q_gate, 0).unwrap();
    b.connect(
        qb_gate,
        q_gate,
        1,
        EtaInvolutionChannel::new(d.clone(), bounds, n1),
    )
    .unwrap();
    b.connect_direct(s_in, qb_gate, 0).unwrap();
    b.connect(
        q_gate,
        qb_gate,
        1,
        EtaInvolutionChannel::new(d.clone(), bounds, n2),
    )
    .unwrap();
    b.connect_direct(q_gate, q_out, 0).unwrap();
    b.connect_direct(qb_gate, qb_out, 0).unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    sim.set_input("s", s.clone()).unwrap();
    sim.set_input("r", r.clone()).unwrap();
    let run = sim.run(horizon).unwrap();
    (
        run.signal("q_out").unwrap().clone(),
        run.signal("qb_out").unwrap().clone(),
    )
}

#[test]
fn set_then_reset() {
    // S pulse latches Q high; a later R pulse brings it back down
    let s = Signal::pulse(0.0, 5.0).unwrap();
    let r = Signal::pulse(20.0, 5.0).unwrap();
    let (q, qb) = simulate_sr(&s, &r, ZeroNoise, ZeroNoise, 60.0);
    assert_eq!(q.value_at(15.0), Bit::One, "set: {q}");
    assert_eq!(qb.value_at(15.0), Bit::Zero);
    assert_eq!(q.final_value(), Bit::Zero, "reset: {q}");
    assert_eq!(qb.final_value(), Bit::One);
}

#[test]
fn outputs_are_complementary_when_settled() {
    let s = Signal::pulse(0.0, 5.0).unwrap();
    let r = Signal::pulse(30.0, 5.0).unwrap();
    let (q, qb) = simulate_sr(&s, &r, UniformNoise::new(3), UniformNoise::new(4), 80.0);
    // away from switching windows, Q and Qb are complementary
    for t in [20.0, 25.0, 60.0, 75.0] {
        assert_ne!(q.value_at(t), qb.value_at(t), "t = {t}: {q} / {qb}");
    }
}

#[test]
fn state_holds_without_inputs() {
    let s = Signal::pulse(0.0, 5.0).unwrap();
    let (q, _) = simulate_sr(&s, &Signal::zero(), ZeroNoise, ZeroNoise, 500.0);
    assert_eq!(q.final_value(), Bit::One);
    // exactly one rising transition — no re-glitching over a long horizon
    assert_eq!(q.len(), 1, "{q}");
}

#[test]
fn near_simultaneous_release_resolves_cleanly_under_noise() {
    // Both inputs high, released almost simultaneously — the classic
    // metastability hazard. Whatever the adversary does, the latch must
    // settle to *some* complementary state with no runt pulses at the
    // outputs beyond the decision window.
    for seed in 0..10u64 {
        for skew in [-0.3, -0.1, 0.0, 0.1, 0.3] {
            let s = Signal::pulse(0.0, 10.0).unwrap();
            let r = Signal::pulse(0.0, 10.0 + skew).unwrap();
            let (q, qb) = simulate_sr(
                &s,
                &r,
                UniformNoise::new(seed),
                UniformNoise::new(seed.wrapping_add(77)),
                400.0,
            );
            // settled well before the horizon
            let last = q
                .last_time()
                .unwrap_or(0.0)
                .max(qb.last_time().unwrap_or(0.0));
            assert!(
                last < 350.0,
                "seed {seed}, skew {skew}: still busy at {last}"
            );
            // complementary end state
            assert_ne!(
                q.final_value(),
                qb.final_value(),
                "seed {seed}, skew {skew}: {q} / {qb}"
            );
        }
    }
}

#[test]
fn metastability_duration_varies_with_adversary() {
    // at zero skew, different adversaries resolve at different times —
    // the non-determinism the η model is built to capture
    let mut settle_times = Vec::new();
    for seed in 0..12u64 {
        let s = Signal::pulse(0.0, 10.0).unwrap();
        let r = Signal::pulse(0.0, 10.0).unwrap();
        let (q, qb) = simulate_sr(
            &s,
            &r,
            UniformNoise::new(seed),
            UniformNoise::new(seed.wrapping_add(1000)),
            400.0,
        );
        let last = q
            .last_time()
            .unwrap_or(0.0)
            .max(qb.last_time().unwrap_or(0.0));
        settle_times.push(last);
    }
    let min = settle_times.iter().cloned().fold(f64::MAX, f64::min);
    let max = settle_times.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max - min > 0.01,
        "adversaries must matter: {settle_times:?}"
    );
}
