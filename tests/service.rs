//! End-to-end tests of the experiment service: golden bit-identity
//! between served and in-process results, cache semantics, typed error
//! frames, graceful drain (in-process and via SIGTERM against the real
//! `faithful-serve` bin), and disk-cache persistence across restarts.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::thread;
use std::time::Duration;

use faithful::service::{
    render_result, ServeConfig, ServeSummary, ServedErrorKind, Server, ServiceClient, ServiceHandle,
};
use faithful::Experiment;

const CHANNEL_SPEC: &str = "faithful/1 channel {\n  \
    channel = involution { delay = exp; tau = 1.0; t_p = 0.5; v_th = 0.5 };\n  \
    input = pulse { at = 0.0; width = 3.0 };\n}\n";

const SPF_SPEC: &str = "faithful/1 spf {\n  \
    delay = exp { tau = 1.0; t_p = 0.5; v_th = 0.5 };\n  \
    eta_minus = 0.02;\n  eta_plus = 0.02;\n  task = theory;\n}\n";

const ANALOG_SPEC: &str = "faithful/1 analog {\n  \
    chain = chain { stages = 3; width_scale = 1.0 };\n  \
    supply = dc { volts = 1.0 };\n  \
    sweep = sweep {\n    \
    widths = [30.0, 60.0, 90.0];\n    \
    settle = 20.0; tail = 60.0; dt = 0.1; slew = 10.0; stage = 1;\n    \
    integrator = rk4;\n  };\n  \
    task = samples { inverted = false };\n}\n";

/// A seeded digital sweep; `seed` varies the scenario so distinct specs
/// are distinct cache entries.
fn digital_spec(seed: u64) -> String {
    format!(
        "faithful/1 digital {{\n  topology = chain {{\n    stages = 8;\n    \
         channel = eta {{\n      delay = exp; tau = 1.0; t_p = 0.5; v_th = 0.5;\n      \
         minus = 0.02; plus = 0.02;\n      noise = uniform; seed = 0;\n    }};\n  }};\n  \
         horizon = 100.0;\n  workers = 4;\n  scenarios = [\n    \
         scenario {{ label = \"draw\"; seed = {seed}; inputs = [\n      \
         drive {{ port = \"a\"; signal = pulse {{ at = 1.0; width = 6.0 }} }}\n    ] }}\n  ];\n  \
         outputs = outputs {{ signals = true; stats = true; vcd = false }};\n}}\n"
    )
}

fn start(config: ServeConfig) -> (SocketAddr, ServiceHandle, thread::JoinHandle<ServeSummary>) {
    let server = Server::bind(config).expect("bind ephemeral server");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn in_process(text: &str) -> String {
    render_result(&Experiment::parse(text).unwrap().run().unwrap())
}

#[test]
fn served_results_are_bit_identical_to_in_process_across_connections() {
    // (spec, in-process golden bytes); the server overrides `workers`,
    // so equality here also pins worker-count invariance end to end.
    let golden: Vec<(String, String)> = [
        CHANNEL_SPEC.to_owned(),
        SPF_SPEC.to_owned(),
        ANALOG_SPEC.to_owned(),
        digital_spec(0),
    ]
    .into_iter()
    .map(|text| {
        let expected = in_process(&text);
        (text, expected)
    })
    .collect();

    for connections in [1usize, 2, 4] {
        let (addr, handle, join) = start(ServeConfig::default());
        let mut clients = Vec::new();
        for _ in 0..connections {
            let golden = golden.clone();
            clients.push(thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).unwrap();
                for (text, expected) in &golden {
                    let response = client.run_one(text).unwrap();
                    assert!(response.reply.is_ok(), "{:?}", response.reply);
                    assert_eq!(
                        &response.payload, expected,
                        "served bytes drifted from in-process bytes \
                         ({connections} connection(s))"
                    );
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.connections, connections as u64);
        assert_eq!(
            summary.jobs + summary.cache_hits,
            (connections * golden.len()) as u64
        );
        assert_eq!(summary.errors, 0);
    }
}

#[test]
fn cache_replays_are_byte_identical_and_format_insensitive() {
    let (addr, handle, join) = start(ServeConfig::default());
    let mut client = ServiceClient::connect(addr).unwrap();

    let text = digital_spec(7);
    let fresh = client.run_one(&text).unwrap();
    assert!(fresh.reply.is_ok(), "{:?}", fresh.reply);
    assert!(!fresh.cached);

    let replay = client.run_one(&text).unwrap();
    assert!(replay.cached, "second submission must hit the cache");
    assert_eq!(replay.payload, fresh.payload, "cache replay must be exact");

    // a comment/whitespace variant is the same cache entry
    let variant = format!(
        "\n# reformatted\n{}\n  # trailing comment\n",
        text.replacen('{', "{\n  # inline\n", 1)
    );
    let reformatted = client.run_one(&variant).unwrap();
    assert!(
        reformatted.cached,
        "formatting variants must share the cache entry"
    );
    assert_eq!(reformatted.payload, fresh.payload);

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.jobs, 1);
    assert_eq!(summary.cache_hits, 2);
}

#[test]
fn unseeded_stochastic_sweeps_bypass_the_cache() {
    // No scenario seed over a `noise = uniform` channel: the one spec
    // class whose replay may differ, so it must never be cached.
    let text = "faithful/1 digital {\n  topology = chain {\n    stages = 4;\n    \
         channel = eta {\n      delay = exp; tau = 1.0; t_p = 0.5; v_th = 0.5;\n      \
         minus = 0.02; plus = 0.02;\n      noise = uniform; seed = 0;\n    };\n  };\n  \
         horizon = 50.0;\n  scenarios = [\n    \
         scenario { label = \"unseeded\"; inputs = [\n      \
         drive { port = \"a\"; signal = pulse { at = 1.0; width = 6.0 } }\n    ] }\n  ];\n}\n";
    let (addr, handle, join) = start(ServeConfig::default());
    let mut client = ServiceClient::connect(addr).unwrap();
    for _ in 0..2 {
        let response = client.run_one(text).unwrap();
        assert!(response.reply.is_ok(), "{:?}", response.reply);
        assert!(!response.cached, "non-replayable specs must not be cached");
    }
    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.jobs, 2);
    assert_eq!(summary.cache_hits, 0);
}

#[test]
fn spec_and_lint_failures_come_back_as_typed_errors() {
    let (addr, handle, join) = start(ServeConfig::default());
    let mut client = ServiceClient::connect(addr).unwrap();

    let garbled = client.run_one("faithful/1 cooking {}").unwrap();
    let err = garbled.reply.unwrap_err();
    assert_eq!(err.kind, ServedErrorKind::Spec);
    assert!(err.message.contains("workload"), "{err}");

    // parses, but the lint preflight rejects the unknown channel kind
    let unlintable =
        "faithful/1 channel {\n  channel = warp { factor = 9.0 };\n  input = zero;\n}\n";
    let linted = client.run_one(unlintable).unwrap();
    let err = linted.reply.unwrap_err();
    assert_eq!(err.kind, ServedErrorKind::Lint);
    let ivl030 = err
        .diagnostics
        .iter()
        .find(|d| d.code == "IVL030")
        .unwrap_or_else(|| panic!("no IVL030 in {err}"));
    assert_eq!(ivl030.severity, faithful::Severity::Error);
    assert!(
        ivl030.span.is_some(),
        "wire diagnostics keep their source spans"
    );

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.errors, 2);
    assert_eq!(summary.jobs, 0);
}

#[test]
fn shutdown_drains_accepted_jobs_and_rejects_new_ones() {
    let (addr, handle, join) = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = ServiceClient::connect(addr).unwrap();

    // two distinct jobs accepted before the drain begins (the pause
    // lets the connection reader consume both submissions; acceptance
    // happens at the reader, not at the client's write)...
    let a = client.submit(&digital_spec(100)).unwrap();
    let b = client.submit(&digital_spec(101)).unwrap();
    thread::sleep(Duration::from_millis(100));
    handle.shutdown();
    // ... and one submitted after: the flag is already set, so the
    // reader must reject it with a typed `shutdown` error.
    let c = client.submit(&digital_spec(102)).unwrap();

    let mut ok = Vec::new();
    let mut rejected = Vec::new();
    for _ in 0..3 {
        let response = client.recv().unwrap();
        match response.reply {
            Ok(_) => ok.push(response.id),
            Err(e) => {
                assert_eq!(e.kind, ServedErrorKind::Shutdown, "{e}");
                rejected.push(response.id);
            }
        }
    }
    ok.sort_unstable();
    assert_eq!(ok, vec![a, b], "accepted jobs must drain to results");
    assert_eq!(rejected, vec![c]);

    let summary = join.join().unwrap();
    assert_eq!(summary.jobs + summary.cache_hits, 2);
    assert_eq!(summary.rejected, 1);
}

#[test]
fn disk_cache_survives_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("faithful_serve_disk_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = || ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let text = digital_spec(55);

    let (addr, handle, join) = start(config());
    let mut client = ServiceClient::connect(addr).unwrap();
    let fresh = client.run_one(&text).unwrap();
    assert!(!fresh.cached);
    drop(client);
    handle.shutdown();
    join.join().unwrap();

    // a brand-new daemon over the same directory serves it from disk
    let (addr, handle, join) = start(config());
    let mut client = ServiceClient::connect(addr).unwrap();
    let replay = client.run_one(&text).unwrap();
    assert!(replay.cached, "disk entries must survive restarts");
    assert_eq!(replay.payload, fresh.payload);
    drop(client);
    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.jobs, 0);
    assert_eq!(summary.cache_hits, 1);
    std::fs::remove_dir_all(&dir).ok();
}

// ======================================================================
// The real daemon, over SIGTERM
// ======================================================================

#[cfg(unix)]
#[test]
fn sigterm_mid_batch_drains_every_accepted_job() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_faithful-serve"))
        .args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn faithful-serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("faithful-serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_owned();

    let mut client = ServiceClient::connect(addr.as_str()).unwrap();
    let batch = 10u64;
    let mut pending: Vec<u64> = (0..batch)
        .map(|i| client.submit(&digital_spec(1000 + i)).unwrap())
        .collect();
    // let a prefix of the batch reach the queue, then pull the plug
    thread::sleep(Duration::from_millis(100));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());

    // Every submitted job is accounted for: a result if it was accepted
    // before the signal, a typed shutdown rejection otherwise. Nothing
    // is dropped and the stream stays decodable throughout.
    let mut results = 0u64;
    let mut rejections = 0u64;
    for _ in 0..batch {
        let response = client.recv().expect("every job must be answered");
        let index = pending
            .iter()
            .position(|&id| id == response.id)
            .expect("response for an id we submitted");
        pending.remove(index);
        match response.reply {
            Ok(_) => results += 1,
            Err(e) => {
                assert_eq!(e.kind, ServedErrorKind::Shutdown, "{e}");
                rejections += 1;
            }
        }
    }
    assert!(pending.is_empty());
    assert_eq!(results + rejections, batch);
    assert!(results >= 1, "at least the in-flight job must complete");

    let status = child.wait().unwrap();
    assert!(status.success(), "daemon must exit 0 after a clean drain");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).unwrap();
    assert!(rest.contains("drained"), "missing drain summary: {rest:?}");
}

#[cfg(unix)]
#[test]
fn client_bin_reports_cache_hits_on_resubmission() {
    let dir = std::env::temp_dir().join(format!("faithful_serve_bin_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let spec_file = dir.join("one.spec");
    std::fs::write(&spec_file, digital_spec(9000)).unwrap();

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_faithful-serve"))
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(daemon.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("faithful-serve: listening on ")
        .unwrap()
        .to_owned();

    let client = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_faithful-client"));
        cmd.args(["--addr", &addr, "--connections", "2"])
            .args(extra)
            .arg(&spec_file);
        cmd.status().unwrap()
    };
    assert!(client(&[]).success(), "cold submission must succeed");
    assert!(
        client(&["--expect-cached"]).success(),
        "hot resubmission must be served from the cache"
    );

    let term = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());
    assert!(daemon.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_driver_aggregates_throughput_and_latency() {
    let (addr, handle, join) = start(ServeConfig::default());
    let specs: Vec<String> = (0..16).map(digital_spec).collect();
    let report = faithful::service::run_batch(
        &addr.to_string(),
        &specs,
        &faithful::service::BatchOptions {
            connections: 4,
            pipeline: 8,
        },
    )
    .unwrap();
    assert_eq!(report.submitted, 16);
    assert_eq!(report.ok, 16);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(report.specs_per_sec() > 0.0);
    let (p50, p99) = (
        report.latency_ms(0.5).unwrap(),
        report.latency_ms(0.99).unwrap(),
    );
    assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");

    // the same batch again is pure cache replay
    let hot = faithful::service::run_batch(
        &addr.to_string(),
        &specs,
        &faithful::service::BatchOptions::default(),
    )
    .unwrap();
    assert_eq!(hot.cached, 16);

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.jobs, 16);
    assert!(summary.cache_hits >= 16);
}

#[test]
fn service_docs_are_pinned() {
    // The spec block shown in EXPERIMENTS.md "Experiment service" —
    // kept verbatim here so the walkthrough cannot drift from a
    // runnable, cacheable spec.
    let spec = r#"faithful/1 digital {
  topology = chain {
    stages = 6;
    channel = eta {
      delay = exp; tau = 1.0; t_p = 0.5; v_th = 0.5;
      minus = 0.02; plus = 0.02;
      noise = uniform; seed = 0;
    };
  };
  horizon = 120.0;
  workers = 4;
  scenarios = [
    scenario { label = "served0"; seed = 0; inputs = [
      drive { port = "a"; signal = pulse { at = 1.0; width = 8.0 } }
    ] },
    scenario { label = "served1"; seed = 1; inputs = [
      drive { port = "a"; signal = pulse { at = 2.0; width = 5.0 } }
    ] }
  ];
}"#;
    let experiments = include_str!("../EXPERIMENTS.md");
    assert!(
        experiments.contains(spec),
        "EXPERIMENTS.md drifted from the pinned service spec"
    );

    // Serve it twice: fresh run, then a byte-identical cache replay —
    // exactly the behavior the walkthrough promises.
    let expected = in_process(spec);
    let (addr, handle, join) = start(ServeConfig::default());
    let mut client = ServiceClient::connect(addr).unwrap();
    let fresh = client.run_one(spec).unwrap();
    assert!(fresh.reply.is_ok(), "{:?}", fresh.reply);
    assert!(!fresh.cached);
    assert_eq!(fresh.payload, expected);
    let replay = client.run_one(spec).unwrap();
    assert!(
        replay.cached,
        "docs promise the second submission replays from cache"
    );
    assert_eq!(replay.payload, expected);
    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.jobs, 1);
    assert_eq!(summary.cache_hits, 1);

    // both documents describe the service surface
    for needle in [
        "## Experiment service",
        "### Frame format",
        "### Error frames",
        "### Cache semantics",
        "RESULT_CACHED",
        "IVL_SERVE_ADDR",
        "IVL_CACHE_DIR",
    ] {
        assert!(
            experiments.contains(needle),
            "EXPERIMENTS.md lost {needle:?}"
        );
    }
    let readme = include_str!("../README.md");
    for needle in [
        "## Experiment service",
        "faithful-serve",
        "faithful-client",
        "canonical_hash",
        "IVL_SERVE_ADDR",
        "IVL_CACHE_DIR",
    ] {
        assert!(readme.contains(needle), "README.md lost {needle:?}");
    }
}
