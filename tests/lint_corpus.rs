//! Golden corpus for `faithful::lint`: every file under
//! `tests/lint_corpus/` triggers a specific diagnostic, every shipped
//! spec under `specs/` is clean, and the `faithful-lint` CLI agrees.

use std::path::Path;
use std::process::Command;

use faithful::core::factory::{ChannelParams, ChannelRegistry};
use faithful::{
    lint, lint_text, lint_text_for_service, DigitalSpec, Error, Experiment, ExperimentSpec,
    LintConfig, NetlistSpec, ScenarioSpec, Severity, SignalSpec, SpfSpec, SpfTask, TopologySpec,
};

fn registry() -> ChannelRegistry {
    ChannelRegistry::with_builtins()
}

fn corpus(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_corpus")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Every corpus file, its expected diagnostic and severity — one row
/// per lint pass category.
const EXPECTED: &[(&str, &str, Severity)] = &[
    ("zero_delay_cycle.spec", "IVL001", Severity::Error),
    ("delayed_feedback.spec", "IVL002", Severity::Info),
    ("undriven_output.spec", "IVL004", Severity::Error),
    ("constraint_c_violation.spec", "IVL011", Severity::Error),
    ("bad_channel_params.spec", "IVL010", Severity::Error),
    ("dead_stimulus.spec", "IVL020", Severity::Warning),
    ("unknown_kind.spec", "IVL030", Severity::Error),
    ("unknown_port.spec", "IVL033", Severity::Error),
    ("empty_sweep_axis.spec", "IVL034", Severity::Error),
    ("duplicate_nodes.spec", "IVL031", Severity::Error),
    ("unknown_edge_ref.spec", "IVL032", Severity::Error),
    ("workers_zero.spec", "IVL037", Severity::Warning),
    ("duplicate_labels.spec", "IVL038", Severity::Warning),
    ("bad_truth_table.spec", "IVL039", Severity::Error),
    ("budget_too_small.spec", "IVL040", Severity::Warning),
    ("retry_deterministic.spec", "IVL041", Severity::Warning),
    ("service_workers_override.spec", "IVL050", Severity::Info),
    ("grid_zero.spec", "IVL060", Severity::Error),
    ("random_dag_unseeded.spec", "IVL061", Severity::Warning),
    ("watch_unknown_node.spec", "IVL062", Severity::Error),
];

#[test]
fn every_corpus_file_triggers_its_diagnostic() {
    let registry = registry();
    for (file, code, severity) in EXPECTED {
        // IVL050 only exists in experiment-service context.
        let lint_fn = if *code == "IVL050" {
            lint_text_for_service
        } else {
            lint_text
        };
        let report = lint_fn(&corpus(file), &registry)
            .unwrap_or_else(|e| panic!("{file} failed to parse: {e}"));
        let hit = report
            .diagnostics()
            .iter()
            .find(|d| d.code == *code)
            .unwrap_or_else(|| panic!("{file}: no {code} in {report}"));
        assert_eq!(hit.severity, *severity, "{file}: {hit}");
        assert!(
            hit.span.is_some(),
            "{file}: {code} should carry a source span"
        );
    }
}

#[test]
fn corpus_covers_every_corpus_file() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus");
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert!(
            EXPECTED.iter().any(|(file, ..)| *file == name),
            "{name} is not registered in EXPECTED"
        );
    }
}

#[test]
fn shipped_specs_and_experiments_md_lint_clean() {
    let registry = registry();
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for entry in std::fs::read_dir(root.join("specs")).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        let report = lint_text(&text, &registry).unwrap();
        assert!(report.is_clean(), "{}: {report}", path.display());
    }
}

#[test]
fn diagnostic_spans_point_into_the_text() {
    let report = lint_text(&corpus("unknown_kind.spec"), &registry()).unwrap();
    let d = &report.diagnostics()[0];
    assert_eq!(d.code, "IVL030");
    let span = d.span.expect("parsed specs carry spans");
    // the `warp { ... }` node on line 3
    assert_eq!((span.line, span.column), (3, 13));
}

#[test]
fn constraint_c_violation_is_rejected_by_run_before_any_event() {
    let err = Experiment::parse(&corpus("constraint_c_violation.spec"))
        .unwrap()
        .run()
        .unwrap_err();
    let Error::Lint(report) = err else {
        panic!("expected Error::Lint, got {err:?}");
    };
    assert!(report.has_errors());
    assert!(report.diagnostics().iter().any(|d| d.code == "IVL011"));
    // the message renders the report
    assert!(Error::Lint(report).to_string().contains("IVL011"));
}

#[test]
fn lint_off_reaches_the_runtime_layer() {
    let err = Experiment::parse(&corpus("constraint_c_violation.spec"))
        .unwrap()
        .with_lint(LintConfig::Off)
        .run()
        .unwrap_err();
    assert!(matches!(err, Error::Spf(_)), "{err:?}");
}

#[test]
fn warnings_do_not_deny() {
    // IVL037 is a warning: deny mode still runs the experiment
    let result = Experiment::parse(&corpus("workers_zero.spec"))
        .unwrap()
        .run()
        .unwrap();
    assert!(result.digital().is_some());
}

#[test]
fn delay_hint_inconsistency_is_ivl014() {
    use faithful::core::channel::{FeedEffect, OnlineChannel};
    use faithful::core::factory::ChannelFactory;
    use faithful::core::Transition;

    // a channel claiming a 1e-3 hint while delivering with delay 10
    #[derive(Clone)]
    struct LyingChannel;
    impl OnlineChannel for LyingChannel {
        fn feed(&mut self, t: Transition) -> FeedEffect {
            FeedEffect::Scheduled(Transition::new(t.time + 10.0, t.value))
        }
        fn reset(&mut self) {}
        fn delay_hint(&self) -> Option<f64> {
            Some(1e-3)
        }
    }
    struct LyingFactory;
    impl ChannelFactory for LyingFactory {
        fn kind(&self) -> &str {
            "lying"
        }
        fn build(
            &self,
            _params: &ChannelParams,
        ) -> Result<Box<dyn faithful::core::channel::SimChannel>, faithful::core::Error> {
            Ok(Box::new(LyingChannel))
        }
    }
    let mut registry = ChannelRegistry::with_builtins();
    registry.register(Box::new(LyingFactory));
    let spec: ExperimentSpec = "faithful/1 channel { channel = lying {}; input = zero }"
        .parse()
        .unwrap();
    let report = lint(&spec, &registry);
    assert!(
        report.diagnostics().iter().any(|d| d.code == "IVL014"),
        "{report}"
    );
}

#[test]
fn hint_spread_is_ivl015() {
    let netlist = NetlistSpec::new()
        .input("a")
        .gate("g1", faithful::GateKindSpec::Not, false)
        .gate("g2", faithful::GateKindSpec::Not, true)
        .output("y")
        .channel("a", "g1", 0, faithful::ChannelSpec::pure(1e-3))
        .channel("g1", "g2", 0, faithful::ChannelSpec::pure(1e6))
        .channel("g2", "y", 0, faithful::ChannelSpec::pure(1.0));
    let spec = ExperimentSpec::digital(DigitalSpec::new(TopologySpec::Netlist(netlist), 10.0));
    let report = lint(&spec, &registry());
    assert!(
        report.diagnostics().iter().any(|d| d.code == "IVL015"),
        "{report}"
    );
}

#[test]
fn unreachable_node_is_ivl005() {
    let netlist = NetlistSpec::new()
        .input("a")
        .gate("g1", faithful::GateKindSpec::Not, false)
        .gate("orphan_src", faithful::GateKindSpec::Not, false)
        .gate("orphan", faithful::GateKindSpec::Not, false)
        .output("y")
        .channel("a", "g1", 0, faithful::ChannelSpec::pure(1.0))
        .channel("g1", "y", 0, faithful::ChannelSpec::pure(1.0))
        .channel("orphan_src", "orphan", 0, faithful::ChannelSpec::pure(1.0))
        .channel("orphan", "orphan_src", 0, faithful::ChannelSpec::pure(1.0));
    let spec = ExperimentSpec::digital(DigitalSpec::new(TopologySpec::Netlist(netlist), 10.0));
    let report = lint(&spec, &registry());
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == "IVL005" && d.severity == Severity::Warning),
        "{report}"
    );
}

#[test]
fn non_finite_horizon_is_ivl035() {
    let spec = ExperimentSpec::digital(
        DigitalSpec::new(
            TopologySpec::InverterChain {
                stages: 2,
                channel: faithful::ChannelSpec::pure(1.0),
            },
            f64::NAN,
        )
        .with_scenario(ScenarioSpec::new("s").with_input("a", SignalSpec::pulse(0.0, 2.0))),
    );
    let report = lint(&spec, &registry());
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == "IVL035" && d.severity == Severity::Error),
        "{report}"
    );
}

#[test]
fn invalid_signal_is_ivl036() {
    let spec = ExperimentSpec::digital(
        DigitalSpec::new(
            TopologySpec::InverterChain {
                stages: 2,
                channel: faithful::ChannelSpec::pure(1.0),
            },
            10.0,
        )
        .with_scenario(ScenarioSpec::new("s").with_input(
            "a",
            SignalSpec::Times {
                initial: false,
                times: vec![3.0, 1.0],
            },
        )),
    );
    let report = lint(&spec, &registry());
    assert!(
        report.diagnostics().iter().any(|d| d.code == "IVL036"),
        "{report}"
    );
}

#[test]
fn spf_filtered_input_is_ivl021() {
    let spec = ExperimentSpec::spf(SpfSpec::exp(1.0, 0.5, 0.5, 0.02, 0.02).with_task(
        SpfTask::Simulate {
            noise: faithful::NoiseSpec::WorstCase,
            input: SignalSpec::pulse(0.0, 0.01),
            horizon: 100.0,
        },
    ));
    let report = lint(&spec, &registry());
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == "IVL021" && d.severity == Severity::Info),
        "{report}"
    );
}

// ---------------------------------------------------------------------
// The CLI
// ---------------------------------------------------------------------

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_faithful-lint"))
}

#[test]
fn cli_flags_the_corpus_and_passes_the_shipped_specs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = cli()
        .current_dir(root)
        .arg("tests/lint_corpus/unknown_kind.spec")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("tests/lint_corpus/unknown_kind.spec:3:13: error[IVL030]:"),
        "{stdout}"
    );

    let out = cli()
        .current_dir(root)
        .args([
            "specs/digital_sweep.spec",
            "specs/analog_characterize.spec",
            "specs/spf_theory.spec",
            "specs/channel_pulse.spec",
            "--markdown",
            "EXPERIMENTS.md",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(out.stdout.is_empty(), "clean specs print nothing");
}

#[test]
fn cli_markdown_spans_are_offset_to_the_enclosing_file() {
    let dir = std::env::temp_dir().join("faithful_lint_md_test");
    std::fs::create_dir_all(&dir).unwrap();
    let md = dir.join("doc.md");
    std::fs::write(
        &md,
        "# doc\n\nsome prose\n\n```text\nfaithful/1 channel {\n  channel = warp {};\n  input = zero;\n}\n```\n",
    )
    .unwrap();
    let out = cli().arg("--markdown").arg(&md).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // `warp {}` sits on file line 7 (line 2 of the fenced block)
    assert!(stdout.contains(":7:13: error[IVL030]:"), "{stdout}");
}

#[test]
fn cli_deny_warnings_escalates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let warn_only = "tests/lint_corpus/workers_zero.spec";
    let ok = cli().current_dir(root).arg(warn_only).output().unwrap();
    assert_eq!(ok.status.code(), Some(0));
    let denied = cli()
        .current_dir(root)
        .args(["--deny-warnings", warn_only])
        .output()
        .unwrap();
    assert_eq!(denied.status.code(), Some(1));
}

#[test]
fn ivl050_only_fires_in_service_context() {
    let registry = registry();
    let text = corpus("service_workers_override.spec");
    // the default path says nothing: workers is honored by Experiment::run
    let plain = lint_text(&text, &registry).unwrap();
    assert!(
        plain.diagnostics().iter().all(|d| d.code != "IVL050"),
        "{plain}"
    );
    assert!(plain.is_clean(), "{plain}");
    // the service path flags it as informational, never blocking
    let served = lint_text_for_service(&text, &registry).unwrap();
    let hit = served
        .diagnostics()
        .iter()
        .find(|d| d.code == "IVL050")
        .unwrap_or_else(|| panic!("no IVL050 in {served}"));
    assert_eq!(hit.severity, Severity::Info);
    assert!(hit.message.contains("shared pool"), "{}", hit.message);
    assert!(!served.has_errors());
}

#[test]
fn cli_service_flag_surfaces_ivl050() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let file = "tests/lint_corpus/service_workers_override.spec";
    let plain = cli().current_dir(root).arg(file).output().unwrap();
    assert_eq!(plain.status.code(), Some(0));
    assert!(!String::from_utf8(plain.stdout).unwrap().contains("IVL050"));
    let served = cli()
        .current_dir(root)
        .args(["--service", file])
        .output()
        .unwrap();
    // info-severity: printed, but still exit 0
    assert_eq!(served.status.code(), Some(0));
    let stdout = String::from_utf8(served.stdout).unwrap();
    assert!(stdout.contains("info[IVL050]"), "{stdout}");
}
