//! Property-based tests of the channel algebra: signal invariants,
//! involution identities, and adversary envelopes.

use faithful::core::channel::{
    Channel, DdmEdgeParams, DegradationDelay, EtaInvolutionChannel, InertialDelay,
    InvolutionChannel, PureDelay,
};
use faithful::core::delay::{check_involution, DelayPair, ExpChannel, RationalPair};
use faithful::core::noise::{
    EtaBounds, ExtendingAdversary, RecordedChoices, UniformNoise, WorstCaseAdversary, ZeroNoise,
};
use faithful::Signal;
use proptest::prelude::*;

/// Random alternating signal: up to 24 transitions with gaps from a
/// fast-glitch-friendly distribution.
fn arb_signal() -> impl Strategy<Value = Signal> {
    proptest::collection::vec(0.01f64..3.0, 0..24).prop_map(|gaps| {
        let mut t = 0.0;
        let mut times = Vec::new();
        for g in gaps {
            t += g;
            times.push(t);
        }
        Signal::from_times(faithful::Bit::Zero, &times)
            .expect("strictly increasing by construction")
    })
}

fn arb_exp() -> impl Strategy<Value = ExpChannel> {
    (0.2f64..3.0, 0.05f64..1.0, 0.15f64..0.85)
        .prop_map(|(tau, tp, vth)| ExpChannel::new(tau, tp, vth).expect("valid params"))
}

/// Checks the output invariants every channel must preserve: alternation
/// and strict monotonicity (guaranteed by `Signal` construction inside
/// `apply`, so reaching here without panic is most of the test), plus
/// value-parity consistency with the input.
fn assert_valid_output(input: &Signal, output: &Signal) {
    assert_eq!(output.initial(), input.initial());
    // cancellation removes transitions pairwise, so parity is preserved
    assert_eq!(
        input.len() % 2,
        output.len() % 2,
        "parity broken: {input} -> {output}"
    );
    assert_eq!(input.final_value(), output.final_value());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn involution_identity_random_exp_channels(d in arb_exp(), t in -0.5f64..5.0) {
        // −δ↑(−δ↓(T)) = T on the representable range
        let hi = 6.0 * d.tau();
        prop_assume!(t < hi);
        prop_assume!(t > -0.9 * d.delta_min());
        let rt = -d.delta_up(-d.delta_down(t));
        prop_assert!((rt - t).abs() < 1e-6, "t={t}, roundtrip={rt}");
    }

    #[test]
    fn involution_identity_random_rational_pairs(
        a in 0.5f64..4.0, c in 0.5f64..4.0, bf in 0.05f64..0.95, t in -0.4f64..8.0
    ) {
        let b = bf * a * c; // guarantees b < a·c (strict causality)
        let d = RationalPair::new(a, b, c).expect("valid");
        prop_assume!(t > -0.9 * a.min(c));
        let rt = -d.delta_down(-d.delta_up(t));
        prop_assert!((rt - t).abs() < 1e-7);
    }

    #[test]
    fn derivative_identity_of_lemma_1(d in arb_exp(), t in -0.3f64..3.0) {
        // δ′↑(−δ↓(T)) = 1/δ′↓(T)
        prop_assume!(t > -0.9 * d.delta_min());
        let lhs = d.d_delta_up(-d.delta_down(t));
        let rhs = 1.0 / d.d_delta_down(t);
        prop_assert!((lhs - rhs).abs() < 1e-5 * rhs.abs().max(1.0));
    }

    #[test]
    fn delta_min_is_positive_fixed_point(d in arb_exp()) {
        let dm = d.delta_min();
        prop_assert!(dm > 0.0);
        prop_assert!((d.delta_up(-dm) - dm).abs() < 1e-9);
        prop_assert!((d.delta_down(-dm) - dm).abs() < 1e-9);
    }

    #[test]
    fn check_involution_passes_for_valid_pairs(d in arb_exp()) {
        let report = check_involution(&d, -0.8 * d.delta_min(), 5.0 * d.tau(), 60);
        prop_assert!(report.is_valid(1e-6), "{report:?}");
    }

    #[test]
    fn all_channels_preserve_signal_invariants(input in arb_signal(), d in arb_exp()) {
        type BoxedApply = Box<dyn FnMut(&Signal) -> Signal>;
        let mut channels: Vec<BoxedApply> = vec![
            {
                let mut c = PureDelay::new(0.7).unwrap();
                Box::new(move |s: &Signal| c.apply(s))
            },
            {
                let mut c = InertialDelay::new(0.7, 0.4).unwrap();
                Box::new(move |s: &Signal| c.apply(s))
            },
            {
                let mut c =
                    DegradationDelay::symmetric(DdmEdgeParams::new(0.7, 0.1, 0.5).unwrap());
                Box::new(move |s: &Signal| c.apply(s))
            },
            {
                let mut c = InvolutionChannel::new(d.clone());
                Box::new(move |s: &Signal| c.apply(s))
            },
            {
                let bounds = EtaBounds::new(0.01, 0.01).unwrap();
                let mut c = EtaInvolutionChannel::new(d.clone(), bounds, UniformNoise::new(7));
                Box::new(move |s: &Signal| c.apply(s))
            },
        ];
        for apply in &mut channels {
            let out = apply(&input);
            assert_valid_output(&input, &out);
        }
    }

    #[test]
    fn eta_zero_equals_involution(input in arb_signal(), d in arb_exp()) {
        let mut det = InvolutionChannel::new(d.clone());
        let mut eta = EtaInvolutionChannel::new(d.clone(), EtaBounds::zero(), ZeroNoise);
        prop_assert_eq!(det.apply(&input), eta.apply(&input));
    }

    #[test]
    fn deterministic_channels_are_pure_functions(input in arb_signal(), d in arb_exp()) {
        let mut c = InvolutionChannel::new(d);
        let a = c.apply(&input);
        let b = c.apply(&input);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn recorded_adversary_replays_exactly(input in arb_signal(), d in arb_exp(), seed in 0u64..1000) {
        // capture a uniform stream, then replay it: identical output
        let bounds = EtaBounds::new(0.02, 0.02).unwrap();
        let n = input.len();
        let mut src = UniformNoise::new(seed);
        let choices: Vec<f64> = (0..n)
            .map(|i| {
                let ctx = faithful::core::noise::NoiseContext {
                    index: i,
                    edge: faithful::Edge::Rising,
                    input_time: 0.0,
                    offset: 1.0,
                    bounds,
                };
                faithful::core::noise::NoiseSource::sample(&mut src, &ctx)
            })
            .collect();
        let mut live = EtaInvolutionChannel::new(
            d.clone(),
            bounds,
            RecordedChoices::new(choices.clone()),
        );
        let mut replay =
            EtaInvolutionChannel::new(d, bounds, RecordedChoices::new(choices));
        prop_assert_eq!(live.apply(&input), replay.apply(&input));
    }

    #[test]
    fn adversary_envelope_for_single_pulses(d in arb_exp(), w in 0.1f64..6.0, seed in 0u64..64) {
        // for a single input pulse, any bounded adversary's output pulse
        // width lies between the worst-case (shrinking) and extending
        // adversaries' widths
        let bounds = EtaBounds::new(0.02, 0.02).unwrap();
        let input = Signal::pulse(0.0, w).unwrap();
        let width_of = |s: &Signal| -> Option<f64> {
            (s.len() == 2).then(|| s.transitions()[1].time - s.transitions()[0].time)
        };
        let mut wc = EtaInvolutionChannel::new(d.clone(), bounds, WorstCaseAdversary);
        let mut ext = EtaInvolutionChannel::new(d.clone(), bounds, ExtendingAdversary);
        let mut rnd = EtaInvolutionChannel::new(d.clone(), bounds, UniformNoise::new(seed));
        let w_min = width_of(&wc.apply(&input));
        let w_max = width_of(&ext.apply(&input));
        let w_rnd = width_of(&rnd.apply(&input));
        if let (Some(lo), Some(hi), Some(mid)) = (w_min, w_max, w_rnd) {
            prop_assert!(lo <= mid + 1e-9 && mid <= hi + 1e-9, "{lo} {mid} {hi}");
        }
        // and if even the extender cancels the pulse, everyone cancels
        if w_max.is_none() {
            prop_assert!(w_rnd.is_none());
            prop_assert!(w_min.is_none());
        }
    }

    #[test]
    fn pure_delay_is_exact_shift(input in arb_signal(), delay in 0.1f64..5.0) {
        let mut c = PureDelay::new(delay).unwrap();
        let out = c.apply(&input);
        prop_assert!(out.approx_eq(&input.shifted(delay), 1e-12));
    }

    #[test]
    fn inertial_delay_output_has_no_short_interval(input in arb_signal()) {
        let window = 0.5;
        let mut c = InertialDelay::new(1.0, window).unwrap();
        let out = c.apply(&input);
        if let Some(min) = out.min_interval() {
            prop_assert!(min >= window - 1e-12, "interval {min} < window");
        }
    }

    #[test]
    fn ddm_delays_never_exceed_nominal(input in arb_signal()) {
        // Bounded single-history channel: every output transition lies
        // within [t_in − s, t_in + t_p0] of *some* same-value input
        // transition, where s bounds the (slightly negative) delay at the
        // degradation onset: |δ(0)| = t_p0·(e^{T0/τ} − 1).
        let (t_p0, t_0, tau) = (0.8, 0.1, 0.5);
        let p = DdmEdgeParams::new(t_p0, t_0, tau).unwrap();
        let neg_bound = t_p0 * ((t_0 / tau).exp() - 1.0);
        let mut c = DegradationDelay::symmetric(p);
        let out = c.apply(&input);
        for tr in out.transitions() {
            let close = input.transitions().iter().any(|i| {
                i.value == tr.value
                    && tr.time - i.time <= t_p0 + 1e-9
                    && i.time - tr.time <= neg_bound + 1e-9
            });
            prop_assert!(close, "unbounded output {tr:?} for {input}");
        }
    }
}

#[test]
fn fast_glitch_train_separates_ddm_from_involution() {
    // the regime the paper's introduction calls out: fast glitch trains,
    // where DDM and involution channels disagree most
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let ddm = DdmEdgeParams::new(d.delta_up_inf(), 0.1, 1.0).unwrap();
    let input = Signal::pulse_train((0..20).map(|i| (i as f64 * 1.7, 0.85))).unwrap();
    let mut inv = InvolutionChannel::new(d);
    let mut deg = DegradationDelay::symmetric(ddm);
    let a = inv.apply(&input);
    let b = deg.apply(&input);
    assert_ne!(
        a.len(),
        b.len(),
        "models should disagree on fast trains: {} vs {}",
        a.len(),
        b.len()
    );
}
