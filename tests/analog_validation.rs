// The legacy serial entry points are exercised on purpose: this suite
// pins the compat wrappers' behaviour (see tests/experiment_facade.rs
// for the facade equivalents).
#![allow(deprecated)]

//! Integration of the analog substrate with the delay-model layer: the
//! Section V pipeline (characterize → model → deviations under
//! variations) reproduced end to end at test scale.

use faithful::analog::chain::InverterChain;
use faithful::analog::characterize::{
    characterize, measure_deviations, sweep_samples, to_empirical, to_piecewise, SweepConfig,
};
use faithful::analog::senseamp::SenseAmp;
use faithful::analog::stimulus::Pulse;
use faithful::analog::supply::VddSource;
use faithful::core::channel::{Channel, InvolutionChannel};
use faithful::core::delay::delta_min_of;
use faithful::core::delay::fit::fit_exp_channel;
use faithful::Edge;

fn test_config() -> SweepConfig {
    SweepConfig {
        widths: (0..10).map(|i| 20.0 + 11.0 * i as f64).collect(),
        dt: 0.1,
        ..SweepConfig::default()
    }
}

#[test]
fn characterized_delay_functions_saturate_and_increase() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let (up, down) = characterize(&chain, &vdd, &test_config()).unwrap();
    for series in [&up, &down] {
        assert!(series.len() >= 6, "only {} samples", series.len());
        // increasing in T
        for w in series.windows(2) {
            assert!(w[1].delay >= w[0].delay - 0.05, "{series:?}");
        }
        // saturating: last increments much smaller than first
        let n = series.len();
        let d_first = series[1].delay - series[0].delay;
        let d_last = series[n - 1].delay - series[n - 2].delay;
        assert!(d_last < d_first * 0.6, "{d_first} vs {d_last}");
    }
}

#[test]
fn digital_model_predicts_analog_crossings_on_nominal_chain() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let cfg = test_config();
    let (up, down) = characterize(&chain, &vdd, &cfg).unwrap();
    let pair = to_empirical(&up, &down).unwrap();

    // fresh pulse not in the sweep grid
    let stim = Pulse::new(60.0, 47.0, 10.0, 1.0).unwrap();
    let run = chain.simulate(&stim, &vdd, 400.0, 0.05).unwrap();
    let input = run.stage_input(cfg.stage).digitize(0.5).unwrap();
    let analog = run.node(cfg.stage).digitize(0.5).unwrap();
    let mut model = InvolutionChannel::new(pair);
    let predicted = model.apply(&input.complemented());
    assert_eq!(predicted.len(), analog.len());
    // The 47 ps pulse falls between sweep grid points and its first edge
    // probes the extrapolated saturation region, so a few ps of error on
    // ~35 ps delays remain — exactly the deterministic-model imperfection
    // that the η-shifts of Section V are there to absorb.
    for (p, a) in predicted.transitions().iter().zip(analog.transitions()) {
        assert!(
            (p.time - a.time).abs() < 3.0,
            "predicted {} vs analog {}",
            p.time,
            a.time
        );
    }
}

#[test]
fn supply_variation_deviations_are_small_and_sign_alternating() {
    // Fig. 8a: ±1 % VDD sine → sub-ps deviations, both signs, growing
    // with |phase| effect but bounded
    let chain = InverterChain::umc90_like(7).unwrap();
    let cfg = test_config();
    let (up, down) = characterize(&chain, &VddSource::dc(1.0), &cfg).unwrap();
    let reference = to_empirical(&up, &down).unwrap();
    let mut any_positive = false;
    let mut any_negative = false;
    for phase in [0.0, 120.0, 240.0] {
        let vdd = VddSource::with_sine(1.0, 0.01, 120.0, phase).unwrap();
        for inverted in [false, true] {
            let devs = measure_deviations(&chain, &vdd, &cfg, &reference, inverted).unwrap();
            for d in devs {
                assert!(d.deviation.abs() < 2.0, "{d:?}");
                if d.deviation > 0.0 {
                    any_positive = true;
                } else if d.deviation < 0.0 {
                    any_negative = true;
                }
            }
        }
    }
    assert!(any_positive && any_negative, "sine must swing both ways");
}

#[test]
fn width_variations_shift_deviations_like_fig_8b_8c() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let cfg = test_config();
    let (up, down) = characterize(&chain, &vdd, &cfg).unwrap();
    let reference = to_empirical(&up, &down).unwrap();
    let mean_dev = |factor: f64| -> f64 {
        let varied = chain.scaled_width(factor).unwrap();
        let mut sum = 0.0;
        let mut n = 0;
        for inverted in [false, true] {
            for d in measure_deviations(&varied, &vdd, &cfg, &reference, inverted).unwrap() {
                sum += d.deviation;
                n += 1;
            }
        }
        sum / n as f64
    };
    let wider = mean_dev(1.1); // Fig. 8b: faster → analog earlier → D < 0
    let narrower = mean_dev(0.9); // Fig. 8c: slower → D > 0
    assert!(wider < -0.2, "wider: {wider}");
    assert!(narrower > 0.2, "narrower: {narrower}");
}

#[test]
fn exp_channel_fit_approximates_measured_data_near_small_t() {
    // Fig. 9: an exp-channel fit misses at large T but is decent overall
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let cfg = test_config();
    let (up, down) = characterize(&chain, &vdd, &cfg).unwrap();
    let ups: Vec<(f64, f64)> = up.iter().map(|s| (s.offset, s.delay)).collect();
    let downs: Vec<(f64, f64)> = down.iter().map(|s| (s.offset, s.delay)).collect();
    let fit = fit_exp_channel(&ups, &downs, None).unwrap();
    assert!(fit.rms < 3.0, "rms {} ps too large", fit.rms);
    // the fitted channel is a true involution with positive delta_min
    let dm = delta_min_of(&fit.channel).unwrap();
    assert!(dm > 0.0);
    // deviations of the fit against the analog chain exist but stay
    // bounded over the sampled range
    let devs = measure_deviations(&chain, &vdd, &cfg, &fit.channel, true).unwrap();
    for d in &devs {
        assert_eq!(d.edge, Edge::Rising);
        assert!(d.deviation.abs() < 5.0, "{d:?}");
    }
}

#[test]
fn lower_vdd_shifts_the_whole_delay_curve_up_fig_7() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let cfg = SweepConfig {
        widths: (0..6).map(|i| 30.0 + 18.0 * i as f64).collect(),
        dt: 0.1,
        ..SweepConfig::default()
    };
    let mean_delay = |v: f64| -> f64 {
        let cfg_v = SweepConfig {
            // keep comparable offsets: scale widths with slower switching
            widths: cfg.widths.iter().map(|w| w * (1.0 / v).powf(1.5)).collect(),
            tail: 600.0,
            ..cfg.clone()
        };
        let vdd = VddSource::dc(v);
        let s = sweep_samples(&chain, &vdd, &cfg_v, false).unwrap();
        s.iter().map(|x| x.delay).sum::<f64>() / s.len() as f64
    };
    let d10 = mean_delay(1.0);
    let d08 = mean_delay(0.8);
    let d06 = mean_delay(0.6);
    assert!(d08 > d10 * 1.1, "{d08} vs {d10}");
    assert!(d06 > d08 * 1.1, "{d06} vs {d08}");
}

#[test]
fn sense_amp_preserves_crossing_order_and_delays_slightly() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let stim = Pulse::new(60.0, 80.0, 10.0, 1.0).unwrap();
    let run = chain
        .simulate(&stim, &VddSource::dc(1.0), 400.0, 0.05)
        .unwrap();
    let amp = SenseAmp::umc90_like().unwrap();
    let raw = run.node(3);
    let scoped = amp.apply(raw).unwrap();
    // crossing at the scaled threshold (gain × VDD/2)
    let raw_cross = raw.rising_crossings(0.5);
    let scoped_cross = scoped.rising_crossings(0.5 * amp.gain());
    assert_eq!(raw_cross.len(), scoped_cross.len());
    for (r, s) in raw_cross.iter().zip(&scoped_cross) {
        assert!(s > r, "amp must add delay");
        assert!(s - r < 40.0, "one-pole lag bounded: {} ps", s - r);
    }
}

#[test]
fn piecewise_from_up_samples_is_involution_exact() {
    let chain = InverterChain::umc90_like(7).unwrap();
    let (up, _) = characterize(&chain, &VddSource::dc(1.0), &test_config()).unwrap();
    let pair = to_piecewise(&up).unwrap();
    // the derived pair satisfies the involution property by construction
    let (lo, hi) = pair.t_range();
    let report = faithful::core::delay::check_involution(&pair, lo, hi, 40);
    assert!(report.max_roundtrip_error < 1e-6, "{report:?}");
}

#[test]
fn supply_noise_hits_the_rising_edge_ground_noise_the_falling_edge() {
    // The paper's remark after Fig. 8a: V_DD variation mostly moves the
    // edge driven by the pull-up (output rising, PMOS), and "when varying
    // the ground level, the reverse case can be observed". Probe a single
    // inverter with a fixed stimulus and compare crossing-time spreads
    // over the modulation phase.
    use faithful::analog::supply::GroundSource;
    let chain = InverterChain::umc90_like(1).unwrap();
    let stim = Pulse::new(60.0, 80.0, 10.0, 1.0).unwrap();

    let crossings = |vdd: &VddSource, gnd: &GroundSource| -> (f64, f64) {
        let run = chain
            .simulate_with_ground(&stim, vdd, gnd, 300.0, 0.05)
            .unwrap();
        let fall = run.node(0).falling_crossings(0.5)[0];
        let rise = run.node(0).rising_crossings(0.5)[0];
        (fall, rise)
    };
    let spread = |xs: &[f64]| {
        xs.iter().cloned().fold(f64::MIN, f64::max) - xs.iter().cloned().fold(f64::MAX, f64::min)
    };

    // supply sine, ideal ground
    let (mut falls, mut rises) = (Vec::new(), Vec::new());
    for k in 0..8 {
        let vdd = VddSource::with_sine(1.0, 0.03, 90.0, k as f64 * 45.0).unwrap();
        let (f, r) = crossings(&vdd, &GroundSource::ideal());
        falls.push(f);
        rises.push(r);
    }
    let (vdd_fall_spread, vdd_rise_spread) = (spread(&falls), spread(&rises));

    // ground sine, clean supply
    let (mut falls, mut rises) = (Vec::new(), Vec::new());
    for k in 0..8 {
        let gnd = GroundSource::with_sine(0.03, 90.0, k as f64 * 45.0).unwrap();
        let (f, r) = crossings(&VddSource::dc(1.0), &gnd);
        falls.push(f);
        rises.push(r);
    }
    let (gnd_fall_spread, gnd_rise_spread) = (spread(&falls), spread(&rises));

    // the opposite edge still moves a little (the victim transistor
    // conducts during the input slew, referenced to the noisy rail), so
    // the asymmetry is a ratio, not a zero
    assert!(
        vdd_rise_spread > 1.3 * vdd_fall_spread,
        "V_DD noise must hit the rising (PMOS) edge harder: rise {vdd_rise_spread} vs fall {vdd_fall_spread}"
    );
    assert!(
        gnd_fall_spread > 1.3 * gnd_rise_spread,
        "ground noise must hit the falling (NMOS) edge harder: fall {gnd_fall_spread} vs rise {gnd_rise_spread}"
    );
}
